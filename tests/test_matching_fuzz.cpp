// Fuzz/equivalence suite for the matching engines: on seeded random
// bipartite graphs (including empty and degenerate sides), Kuhn,
// Hopcroft-Karp and Dinic must agree on the maximum-matching size, and the
// allocation-free CSR matcher must agree with the legacy BipartiteGraph
// engines instance-for-instance. This is the algebra local reconfiguration
// stands on: engines is a campaign sweep axis, so a single disagreeing
// instance would split yield curves by engine.
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/bipartite_graph.hpp"
#include "graph/csr_matching.hpp"
#include "graph/matching.hpp"

namespace dmfb::graph {
namespace {

constexpr MatchingEngine kEngines[] = {
    MatchingEngine::kHopcroftKarp,
    MatchingEngine::kKuhn,
    MatchingEngine::kDinic,
};

/// One random instance: edges[a] lists a's right neighbours (sorted,
/// deduplicated by construction order).
struct Instance {
  std::int32_t left = 0;
  std::int32_t right = 0;
  std::vector<std::vector<std::int32_t>> edges;
};

Instance random_instance(Rng& rng) {
  Instance instance;
  instance.left = rng.uniform_int(0, 9);
  instance.right = rng.uniform_int(0, 9);
  instance.edges.resize(static_cast<std::size_t>(instance.left));
  if (instance.right == 0) return instance;
  // Edge density from empty to near-complete.
  const double density = rng.uniform01();
  for (auto& row : instance.edges) {
    for (std::int32_t b = 0; b < instance.right; ++b) {
      if (rng.bernoulli(density)) row.push_back(b);
    }
  }
  return instance;
}

BipartiteGraph legacy_graph(const Instance& instance) {
  BipartiteGraph graph(instance.left, instance.right);
  for (std::int32_t a = 0; a < instance.left; ++a) {
    for (const std::int32_t b :
         instance.edges[static_cast<std::size_t>(a)]) {
      graph.add_edge(a, b);
    }
  }
  return graph;
}

void build_csr(const Instance& instance, CsrBipartiteGraph& graph) {
  graph.clear();
  for (std::int32_t a = 0; a < instance.left; ++a) {
    graph.open_row();
    for (const std::int32_t b :
         instance.edges[static_cast<std::size_t>(a)]) {
      graph.add_edge(b);
    }
  }
}

TEST(MatchingFuzz, EnginesAndCsrAgreeOnRandomInstances) {
  Rng rng(0x5EED5EEDULL);
  CsrBipartiteGraph csr;     // reused across instances, as in the hot loop
  CsrMatcher matcher;
  for (std::int32_t trial = 0; trial < 3000; ++trial) {
    const Instance instance = random_instance(rng);
    const BipartiteGraph legacy = legacy_graph(instance);
    build_csr(instance, csr);

    const MatchingResult reference = maximum_matching(legacy, kEngines[0]);
    EXPECT_TRUE(is_valid_matching(legacy, reference)) << "trial=" << trial;
    for (const MatchingEngine engine : kEngines) {
      const MatchingResult result = maximum_matching(legacy, engine);
      EXPECT_TRUE(is_valid_matching(legacy, result)) << "trial=" << trial;
      EXPECT_EQ(result.size, reference.size)
          << "trial=" << trial << " engine=" << static_cast<int>(engine);
      EXPECT_EQ(matcher.maximum_matching_size(csr, engine), reference.size)
          << "trial=" << trial << " csr engine=" << static_cast<int>(engine);
      EXPECT_EQ(matcher.covers_all_left(csr, engine),
                reference.covers_all_left())
          << "trial=" << trial;
    }
  }
}

TEST(MatchingFuzz, DegenerateSidesMatchEverywhere) {
  CsrBipartiteGraph csr;
  CsrMatcher matcher;
  // (left, right) with no edges: matching size is always 0, and
  // covers_all_left holds iff the left side is empty.
  constexpr std::pair<std::int32_t, std::int32_t> kShapes[] = {
      {0, 0}, {0, 5}, {5, 0}, {3, 3}};
  for (const auto& [left, right] : kShapes) {
    const Instance instance{
        left, right,
        std::vector<std::vector<std::int32_t>>(
            static_cast<std::size_t>(left))};
    const BipartiteGraph legacy = legacy_graph(instance);
    build_csr(instance, csr);
    for (const MatchingEngine engine : kEngines) {
      EXPECT_EQ(maximum_matching(legacy, engine).size, 0);
      EXPECT_EQ(matcher.maximum_matching_size(csr, engine), 0);
      EXPECT_EQ(matcher.covers_all_left(csr, engine), left == 0);
    }
  }
}

TEST(MatchingFuzz, HallViolatorWitnessesEveryDeficientInstance) {
  // Piggyback on the fuzz stream: whenever the matching misses a left
  // vertex, the extracted Hall violator must certify it.
  Rng rng(0xB1A5ULL);
  for (std::int32_t trial = 0; trial < 500; ++trial) {
    const Instance instance = random_instance(rng);
    const BipartiteGraph legacy = legacy_graph(instance);
    const MatchingResult result = maximum_matching(legacy);
    const std::vector<std::int32_t> violator = hall_violator(legacy, result);
    if (result.covers_all_left()) {
      EXPECT_TRUE(violator.empty()) << "trial=" << trial;
      continue;
    }
    ASSERT_FALSE(violator.empty()) << "trial=" << trial;
    // |N(S)| < |S|, computed straight from the edge lists.
    std::vector<char> in_neighborhood(
        static_cast<std::size_t>(instance.right), 0);
    for (const std::int32_t a : violator) {
      for (const std::int32_t b :
           instance.edges[static_cast<std::size_t>(a)]) {
        in_neighborhood[static_cast<std::size_t>(b)] = 1;
      }
    }
    std::int64_t neighborhood = 0;
    for (const char bit : in_neighborhood) neighborhood += bit;
    EXPECT_LT(neighborhood, static_cast<std::int64_t>(violator.size()))
        << "trial=" << trial;
  }
}

}  // namespace
}  // namespace dmfb::graph
