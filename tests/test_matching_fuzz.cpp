// Fuzz/equivalence suite for the matching engines: on seeded random
// bipartite graphs (including empty and degenerate sides), Kuhn,
// Hopcroft-Karp, Dinic and push-relabel must agree on the maximum-matching
// size, and the allocation-free CSR matcher must agree with the legacy
// BipartiteGraph engines instance-for-instance. This is the algebra local
// reconfiguration stands on: engines is a campaign sweep axis, so a single
// disagreeing instance would split yield curves by engine.
//
// The second half fuzzes sim::FaultState's incremental-repair path:
// randomized insert/remove fault sequences replayed incrementally must give
// the same verdict as a from-scratch check by every batch engine, with the
// incremental matching passing its full invariant check after every step.
#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "biochip/dtmb.hpp"
#include "common/rng.hpp"
#include "graph/bipartite_graph.hpp"
#include "graph/csr_matching.hpp"
#include "graph/matching.hpp"
#include "sim/chip_design.hpp"
#include "sim/fault_state.hpp"

namespace dmfb::graph {
namespace {

constexpr MatchingEngine kEngines[] = {
    MatchingEngine::kHopcroftKarp,
    MatchingEngine::kKuhn,
    MatchingEngine::kDinic,
    MatchingEngine::kPushRelabel,
    MatchingEngine::kAuto,  // resolves per instance; must still agree
};

/// One random instance: edges[a] lists a's right neighbours (sorted,
/// deduplicated by construction order).
struct Instance {
  std::int32_t left = 0;
  std::int32_t right = 0;
  std::vector<std::vector<std::int32_t>> edges;
};

Instance random_instance(Rng& rng) {
  Instance instance;
  instance.left = rng.uniform_int(0, 9);
  instance.right = rng.uniform_int(0, 9);
  instance.edges.resize(static_cast<std::size_t>(instance.left));
  if (instance.right == 0) return instance;
  // Edge density from empty to near-complete.
  const double density = rng.uniform01();
  for (auto& row : instance.edges) {
    for (std::int32_t b = 0; b < instance.right; ++b) {
      if (rng.bernoulli(density)) row.push_back(b);
    }
  }
  return instance;
}

BipartiteGraph legacy_graph(const Instance& instance) {
  BipartiteGraph graph(instance.left, instance.right);
  for (std::int32_t a = 0; a < instance.left; ++a) {
    for (const std::int32_t b :
         instance.edges[static_cast<std::size_t>(a)]) {
      graph.add_edge(a, b);
    }
  }
  return graph;
}

void build_csr(const Instance& instance, CsrBipartiteGraph& graph) {
  graph.clear();
  for (std::int32_t a = 0; a < instance.left; ++a) {
    graph.open_row();
    for (const std::int32_t b :
         instance.edges[static_cast<std::size_t>(a)]) {
      graph.add_edge(b);
    }
  }
}

TEST(MatchingFuzz, EnginesAndCsrAgreeOnRandomInstances) {
  Rng rng(0x5EED5EEDULL);
  CsrBipartiteGraph csr;     // reused across instances, as in the hot loop
  CsrMatcher matcher;
  for (std::int32_t trial = 0; trial < 3000; ++trial) {
    const Instance instance = random_instance(rng);
    const BipartiteGraph legacy = legacy_graph(instance);
    build_csr(instance, csr);

    const MatchingResult reference = maximum_matching(legacy, kEngines[0]);
    EXPECT_TRUE(is_valid_matching(legacy, reference)) << "trial=" << trial;
    for (const MatchingEngine engine : kEngines) {
      const MatchingResult result = maximum_matching(legacy, engine);
      EXPECT_TRUE(is_valid_matching(legacy, result)) << "trial=" << trial;
      EXPECT_EQ(result.size, reference.size)
          << "trial=" << trial << " engine=" << static_cast<int>(engine);
      EXPECT_EQ(matcher.maximum_matching_size(csr, engine), reference.size)
          << "trial=" << trial << " csr engine=" << static_cast<int>(engine);
      EXPECT_EQ(matcher.covers_all_left(csr, engine),
                reference.covers_all_left())
          << "trial=" << trial;
    }
  }
}

TEST(MatchingFuzz, DegenerateSidesMatchEverywhere) {
  CsrBipartiteGraph csr;
  CsrMatcher matcher;
  // (left, right) with no edges: matching size is always 0, and
  // covers_all_left holds iff the left side is empty.
  constexpr std::pair<std::int32_t, std::int32_t> kShapes[] = {
      {0, 0}, {0, 5}, {5, 0}, {3, 3}};
  for (const auto& [left, right] : kShapes) {
    const Instance instance{
        left, right,
        std::vector<std::vector<std::int32_t>>(
            static_cast<std::size_t>(left))};
    const BipartiteGraph legacy = legacy_graph(instance);
    build_csr(instance, csr);
    for (const MatchingEngine engine : kEngines) {
      EXPECT_EQ(maximum_matching(legacy, engine).size, 0);
      EXPECT_EQ(matcher.maximum_matching_size(csr, engine), 0);
      EXPECT_EQ(matcher.covers_all_left(csr, engine), left == 0);
    }
  }
}

TEST(MatchingFuzz, HallViolatorWitnessesEveryDeficientInstance) {
  // Piggyback on the fuzz stream: whenever the matching misses a left
  // vertex, the extracted Hall violator must certify it.
  Rng rng(0xB1A5ULL);
  for (std::int32_t trial = 0; trial < 500; ++trial) {
    const Instance instance = random_instance(rng);
    const BipartiteGraph legacy = legacy_graph(instance);
    const MatchingResult result = maximum_matching(legacy);
    const std::vector<std::int32_t> violator = hall_violator(legacy, result);
    if (result.covers_all_left()) {
      EXPECT_TRUE(violator.empty()) << "trial=" << trial;
      continue;
    }
    ASSERT_FALSE(violator.empty()) << "trial=" << trial;
    // |N(S)| < |S|, computed straight from the edge lists.
    std::vector<char> in_neighborhood(
        static_cast<std::size_t>(instance.right), 0);
    for (const std::int32_t a : violator) {
      for (const std::int32_t b :
           instance.edges[static_cast<std::size_t>(a)]) {
        in_neighborhood[static_cast<std::size_t>(b)] = 1;
      }
    }
    std::int64_t neighborhood = 0;
    for (const char bit : in_neighborhood) neighborhood += bit;
    EXPECT_LT(neighborhood, static_cast<std::int64_t>(violator.size()))
        << "trial=" << trial;
  }
}

// ----------------------------------------------------------------------
// Incremental-repair fuzz: evolving fault sets on a real DTMB design.

/// The faulty primaries the (policy, pool) skeleton must cover, straight
/// from the packed words — the ground truth incremental_matched_count()
/// must reach on every feasible verdict.
std::int32_t covered_faulty(const sim::FaultState& state,
                            const sim::ChipDesign::Skeleton& skeleton) {
  std::int32_t count = 0;
  const auto words = state.fault_words();
  for (std::size_t w = 0; w < words.size(); ++w) {
    count += std::popcount(words[w] & skeleton.cover_words[w]);
  }
  return count;
}

sim::FaultState& load_faults(sim::FaultState& state,
                             const std::vector<char>& faulty) {
  state.reset();
  for (std::size_t cell = 0; cell < faulty.size(); ++cell) {
    if (faulty[cell]) state.set_faulty(static_cast<std::int32_t>(cell));
  }
  return state;
}

std::shared_ptr<const sim::ChipDesign> fuzz_design() {
  // 9x9 DTMB(2,6): 81 cells, so the fault bitmap crosses a word boundary.
  // A quarter of the primaries are assay-used to give the used-faulty
  // policy and the spares-and-unused pool real work.
  auto array = biochip::make_dtmb_array(biochip::DtmbKind::kDtmb2_6, 9, 9);
  std::int32_t marked = 0;
  for (const auto primary : array.primaries()) {
    if (marked >= array.primary_count() / 4) break;
    array.set_usage(primary, biochip::CellUsage::kAssayUsed);
    ++marked;
  }
  return sim::ChipDesign::make(array);
}

TEST(IncrementalRepairFuzz, AgreesWithEveryScratchEngineOnRandomSequences) {
  const auto design = fuzz_design();
  const auto n = static_cast<std::size_t>(design->cell_count());
  constexpr reconfig::CoveragePolicy kPolicies[] = {
      reconfig::CoveragePolicy::kAllFaultyPrimaries,
      reconfig::CoveragePolicy::kUsedFaultyPrimaries};
  constexpr reconfig::ReplacementPool kPools[] = {
      reconfig::ReplacementPool::kSparesOnly,
      reconfig::ReplacementPool::kSparesAndUnusedPrimaries};
  Rng rng(0x19C4E5ULL);
  for (const auto policy : kPolicies) {
    for (const auto pool : kPools) {
      const auto& skeleton = design->skeleton(policy, pool);
      sim::FaultState inc(design);      // carries history across steps
      sim::FaultState scratch(design);  // always batch, per engine
      std::vector<char> faulty(n, 0);
      for (std::int32_t step = 0; step < 400; ++step) {
        if (rng.bernoulli(0.15)) {
          // Heavy churn: resample the whole set (exercises the rebuild
          // threshold and the post-rebuild diff baseline).
          const double density = rng.uniform01() * 0.35;
          for (auto& bit : faulty) bit = rng.bernoulli(density) ? 1 : 0;
        } else {
          // Light churn: toggle a few cells (the diff path's home turf).
          const std::int32_t flips = rng.uniform_int(1, 6);
          for (std::int32_t f = 0; f < flips; ++f) {
            const auto cell = static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int32_t>(n) - 1));
            faulty[cell] ^= 1;
          }
        }
        const bool verdict =
            load_faults(inc, faulty).repairable_incremental(policy, pool);
        EXPECT_TRUE(inc.incremental_matching_valid()) << "step=" << step;
        if (verdict) {
          EXPECT_EQ(inc.incremental_matched_count(),
                    covered_faulty(inc, skeleton))
              << "step=" << step;
        }
        load_faults(scratch, faulty);
        for (const MatchingEngine engine : kEngines) {
          EXPECT_EQ(scratch.repairable(policy, engine, pool), verdict)
              << "step=" << step << " engine=" << static_cast<int>(engine);
        }
      }
    }
  }
}

TEST(IncrementalRepairFuzz, SurvivesConfigSwitchesMidSequence) {
  // Switching (policy, pool) between calls invalidates the diff baseline;
  // the state must rebuild and stay correct rather than diff across
  // incompatible skeletons.
  const auto design = fuzz_design();
  const auto n = static_cast<std::size_t>(design->cell_count());
  Rng rng(0xC0F19ULL);
  sim::FaultState inc(design);
  sim::FaultState scratch(design);
  std::vector<char> faulty(n, 0);
  for (std::int32_t step = 0; step < 200; ++step) {
    const std::int32_t flips = rng.uniform_int(1, 4);
    for (std::int32_t f = 0; f < flips; ++f) {
      faulty[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int32_t>(n) - 1))] ^= 1;
    }
    const auto policy = rng.bernoulli(0.5)
                            ? reconfig::CoveragePolicy::kAllFaultyPrimaries
                            : reconfig::CoveragePolicy::kUsedFaultyPrimaries;
    const auto pool =
        rng.bernoulli(0.5)
            ? reconfig::ReplacementPool::kSparesOnly
            : reconfig::ReplacementPool::kSparesAndUnusedPrimaries;
    const bool verdict =
        load_faults(inc, faulty).repairable_incremental(policy, pool);
    EXPECT_TRUE(inc.incremental_matching_valid()) << "step=" << step;
    EXPECT_EQ(load_faults(scratch, faulty)
                  .repairable(policy, MatchingEngine::kHopcroftKarp, pool),
              verdict)
        << "step=" << step;
  }
}

}  // namespace
}  // namespace dmfb::graph
