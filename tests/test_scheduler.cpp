// Tests for sequencing graphs and the resource-constrained list scheduler.
#include <gtest/gtest.h>

#include "assay/list_scheduler.hpp"
#include "assay/sequencing_graph.hpp"
#include "common/contracts.hpp"

namespace dmfb::assay {
namespace {

// -------------------------------------------------------- SequencingGraph

TEST(SequencingGraph, SingleAssayStructure) {
  const auto graph = SequencingGraph::single_assay("glucose", 6.0, 10.0);
  EXPECT_EQ(graph.op_count(), 4);
  EXPECT_EQ(graph.op(0).kind, OpKind::kDispense);
  EXPECT_EQ(graph.op(2).kind, OpKind::kMix);
  EXPECT_EQ(graph.op(3).kind, OpKind::kDetect);
  EXPECT_TRUE(graph.is_terminal(3));
  EXPECT_FALSE(graph.is_terminal(2));
}

TEST(SequencingGraph, ArityEnforced) {
  SequencingGraph graph;
  const auto d = graph.add(OpKind::kDispense, "d", 1.0);
  EXPECT_THROW(graph.add(OpKind::kMix, "bad-mix", 1.0, {d}),
               ContractViolation);
  EXPECT_THROW(graph.add(OpKind::kDispense, "bad-dispense", 1.0, {d}),
               ContractViolation);
  EXPECT_THROW(graph.add(OpKind::kDetect, "bad-input", 1.0, {42}),
               ContractViolation);
}

TEST(SequencingGraph, SingleConsumerRuleExceptSplit) {
  SequencingGraph graph;
  const auto d1 = graph.add(OpKind::kDispense, "d1", 1.0);
  graph.add(OpKind::kStore, "s1", 1.0, {d1});
  // d1's droplet is consumed; a second consumer is a bug.
  EXPECT_THROW(graph.add(OpKind::kDetect, "again", 1.0, {d1}),
               ContractViolation);
  // Splits fan out to exactly two consumers.
  const auto d2 = graph.add(OpKind::kDispense, "d2", 1.0);
  const auto split = graph.add(OpKind::kSplit, "split", 1.0, {d2});
  graph.add(OpKind::kDetect, "left", 1.0, {split});
  graph.add(OpKind::kStore, "right", 1.0, {split});
  EXPECT_THROW(graph.add(OpKind::kStore, "third", 1.0, {split}),
               ContractViolation);
}

TEST(SequencingGraph, CriticalPathSingleChain) {
  const auto graph = SequencingGraph::single_assay("glucose", 6.0, 10.0);
  // dispense(2) -> mix(6) -> detect(10) = 18.
  EXPECT_NEAR(graph.critical_path(), 18.0, 1e-12);
  EXPECT_NEAR(graph.total_work(), 2.0 + 2.0 + 6.0 + 10.0, 1e-12);
}

TEST(SequencingGraph, MultiplexedIvdShape) {
  const auto graph = SequencingGraph::multiplexed_ivd();
  EXPECT_EQ(graph.op_count(), 16);  // 4 chains x (2 dispense + mix + detect)
  // Longest chain: dispense 2 + mix 8 + detect 12 = 22.
  EXPECT_NEAR(graph.critical_path(), 22.0, 1e-12);
}

TEST(SequencingGraph, DilutionLadderUsesSplits) {
  const auto graph = SequencingGraph::dilution_ladder(3);
  std::int32_t splits = 0;
  for (const auto& operation : graph.ops()) {
    if (operation.kind == OpKind::kSplit) ++splits;
  }
  EXPECT_EQ(splits, 3);
  EXPECT_GT(graph.critical_path(), 3 * (4.0 + 1.0));  // mixes + splits chain
}

TEST(SequencingGraph, OpKindNames) {
  EXPECT_STREQ(to_string(OpKind::kDispense), "dispense");
  EXPECT_STREQ(to_string(OpKind::kSplit), "split");
}

// ----------------------------------------------------------- ListScheduler

TEST(ListScheduler, ScheduleIsValidatedByConstruction) {
  const auto graph = SequencingGraph::multiplexed_ivd();
  const ListScheduler scheduler({4, 2, 2});
  const Schedule schedule = scheduler.schedule(graph);
  EXPECT_TRUE(schedule.respects_dependencies(graph));
  EXPECT_TRUE(schedule.respects_resources(graph, scheduler.pool()));
}

TEST(ListScheduler, MakespanBracketedByTheory) {
  const auto graph = SequencingGraph::multiplexed_ivd();
  for (const std::int32_t mixers : {1, 2, 4}) {
    const ListScheduler scheduler({4, mixers, 4});
    const double makespan = scheduler.schedule(graph).makespan();
    EXPECT_GE(makespan, graph.critical_path() - 1e-9);
    EXPECT_LE(makespan, graph.total_work() + 1e-9);
  }
}

TEST(ListScheduler, MoreMixersNeverSlower) {
  const auto graph = SequencingGraph::multiplexed_ivd();
  double previous = 1e18;
  for (const std::int32_t mixers : {1, 2, 3, 4}) {
    const ListScheduler scheduler({4, mixers, 4});
    const double makespan = scheduler.schedule(graph).makespan();
    EXPECT_LE(makespan, previous + 1e-9) << mixers << " mixers";
    previous = makespan;
  }
}

TEST(ListScheduler, AmpleResourcesReachCriticalPath) {
  const auto graph = SequencingGraph::multiplexed_ivd();
  const ListScheduler scheduler({8, 8, 8});
  EXPECT_NEAR(scheduler.schedule(graph).makespan(), graph.critical_path(),
              1e-9);
}

TEST(ListScheduler, SingleMixerSerialisesMixes) {
  const auto graph = SequencingGraph::multiplexed_ivd();
  const ListScheduler scheduler({4, 1, 4});
  const Schedule schedule = scheduler.schedule(graph);
  // Total mix time = 6+6+8+8 = 28; one mixer cannot beat that.
  double mix_end = 0.0;
  for (const auto& operation : graph.ops()) {
    if (operation.kind == OpKind::kMix) {
      mix_end = std::max(mix_end, schedule.of(operation.id).end_s);
    }
  }
  EXPECT_GE(mix_end, 28.0 - 1e-9);
}

TEST(ListScheduler, StoreNeedsNoResource) {
  SequencingGraph graph;
  const auto d = graph.add(OpKind::kDispense, "d", 2.0);
  const auto s = graph.add(OpKind::kStore, "park", 5.0, {d});
  const ListScheduler scheduler({1, 1, 1});
  const Schedule schedule = scheduler.schedule(graph);
  EXPECT_EQ(schedule.of(s).resource_index, -1);
  EXPECT_NEAR(schedule.of(s).start_s, 2.0, 1e-12);
}

TEST(ListScheduler, DilutionLadderSchedules) {
  const auto graph = SequencingGraph::dilution_ladder(4);
  const ListScheduler scheduler({2, 2, 1});
  const Schedule schedule = scheduler.schedule(graph);
  EXPECT_TRUE(schedule.respects_dependencies(graph));
  EXPECT_TRUE(schedule.respects_resources(graph, scheduler.pool()));
  EXPECT_GE(schedule.makespan(), graph.critical_path() - 1e-9);
}

TEST(ListScheduler, MissingResourceClassRejected) {
  const auto graph = SequencingGraph::single_assay("glucose", 6.0, 10.0);
  const ListScheduler no_detector({2, 2, 0});
  EXPECT_THROW(no_detector.schedule(graph), ContractViolation);
}

TEST(ListScheduler, Deterministic) {
  const auto graph = SequencingGraph::multiplexed_ivd();
  const ListScheduler scheduler({4, 2, 2});
  const auto first = scheduler.schedule(graph);
  const auto second = scheduler.schedule(graph);
  for (std::int32_t id = 0; id < graph.op_count(); ++id) {
    EXPECT_EQ(first.of(id).start_s, second.of(id).start_s);
    EXPECT_EQ(first.of(id).resource_index, second.of(id).resource_index);
  }
}

}  // namespace
}  // namespace dmfb::assay
