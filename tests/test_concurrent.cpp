// Tests for concurrent testing (stimulus droplet sharing the array with
// running assay droplets).
#include <gtest/gtest.h>

#include "biochip/dtmb.hpp"
#include "common/contracts.hpp"
#include "fluidics/router.hpp"
#include "testplan/concurrent_test.hpp"

namespace dmfb::testplan {
namespace {

biochip::HexArray open_array(std::int32_t side = 8) {
  return biochip::HexArray(hex::Region::parallelogram(side, side),
                           [](hex::HexCoord) {
                             return biochip::CellRole::kPrimary;
                           });
}

fluidics::TimedRoute parked(const biochip::HexArray& array, hex::HexCoord at,
                            fluidics::DropletId id) {
  fluidics::TimedRoute route;
  route.droplet = id;
  route.cells = {array.region().index_of(at)};
  return route;
}

TEST(ConcurrentTest, FullCoverageWithoutAssays) {
  const auto array = open_array();
  const auto report = run_concurrent_test(array, 0, {}, 1000);
  EXPECT_FALSE(report.deadline_hit);
  EXPECT_TRUE(report.untested.empty());
  EXPECT_NEAR(report.coverage(array), 1.0, 1e-12);
}

TEST(ConcurrentTest, ParkedDropletShadowsItsNeighbourhood) {
  const auto array = open_array();
  // An assay droplet parked mid-array for the whole session.
  const auto report = run_concurrent_test(
      array, 0, {parked(array, {4, 4}, 0)}, 2000);
  // The droplet cell and its six neighbours are permanently excluded.
  EXPECT_EQ(report.untested.size(), 7u);
  for (const auto cell : report.untested) {
    EXPECT_LE(hex::distance(array.region().coord_at(cell), {4, 4}), 1);
  }
}

TEST(ConcurrentTest, TestedCellsNeverViolateConstraints) {
  const auto array = open_array();
  // A droplet crossing row 4 slowly.
  fluidics::TimedRoute crossing;
  crossing.droplet = 0;
  for (std::int32_t q = 0; q < 8; ++q) {
    crossing.cells.push_back(array.region().index_of({q, 4}));
    crossing.cells.push_back(array.region().index_of({q, 4}));  // half speed
  }
  const auto report = run_concurrent_test(array, 0, {crossing}, 4000);
  // Whatever was tested, the walk was constraint-clean by construction;
  // verify the report's bookkeeping is consistent.
  EXPECT_EQ(report.tested.size() + report.untested.size(),
            static_cast<std::size_t>(array.cell_count()));
  EXPECT_GT(report.coverage(array), 0.5);
}

TEST(ConcurrentTest, DeadlineLimitsCoverage) {
  const auto array = open_array();
  const auto report = run_concurrent_test(array, 0, {}, 10);
  EXPECT_TRUE(report.deadline_hit);
  EXPECT_FALSE(report.untested.empty());
  EXPECT_LE(report.cycles_used, 10);
}

TEST(ConcurrentTest, BlockedSourceReportsEverythingUntested) {
  const auto array = open_array();
  // Assay droplet parked right next to the test source (cell 0 = (0,0)).
  const auto report = run_concurrent_test(
      array, 0, {parked(array, {1, 0}, 0)}, 50);
  EXPECT_TRUE(report.deadline_hit);
  EXPECT_EQ(report.untested.size(),
            static_cast<std::size_t>(array.cell_count()));
}

TEST(ConcurrentTest, MoreAssayTrafficLowersCoverage) {
  const auto array = open_array();
  const auto light = run_concurrent_test(
      array, 0, {parked(array, {6, 6}, 0)}, 600);
  const auto heavy = run_concurrent_test(
      array, 0,
      {parked(array, {6, 6}, 0), parked(array, {2, 5}, 1),
       parked(array, {5, 2}, 2)},
      600);
  EXPECT_LE(heavy.coverage(array), light.coverage(array) + 1e-12);
}

TEST(ConcurrentTest, ValidatesArguments) {
  const auto array = open_array();
  EXPECT_THROW(run_concurrent_test(array, -1, {}, 100), ContractViolation);
  EXPECT_THROW(run_concurrent_test(array, 0, {}, 0), ContractViolation);
}

}  // namespace
}  // namespace dmfb::testplan
