// Tests proving the DTMB(s, p) interstitial patterns (paper Definition 1,
// Figs 3-6, Table 1): the (s, p) promise on interior cells, spare
// non-adjacency, redundancy-ratio convergence, and the cluster-exact
// DTMB(1,6) builder.
#include <set>

#include <gtest/gtest.h>

#include "biochip/dtmb.hpp"
#include "biochip/redundancy.hpp"
#include "common/contracts.hpp"

namespace dmfb::biochip {
namespace {

struct PatternCase {
  DtmbKind kind;
  std::int32_t s;
  std::int32_t p;
  double rr;
  bool spares_nonadjacent;
};

constexpr PatternCase kPatternCases[] = {
    {DtmbKind::kDtmb1_6, 1, 6, 1.0 / 6.0, true},
    {DtmbKind::kDtmb2_6, 2, 6, 1.0 / 3.0, true},
    {DtmbKind::kDtmb2_6B, 2, 6, 1.0 / 3.0, true},
    {DtmbKind::kDtmb3_6, 3, 6, 1.0 / 2.0, true},
    {DtmbKind::kDtmb4_4, 4, 4, 1.0, false},  // spare rows touch laterally
};

class DtmbPatternTest : public ::testing::TestWithParam<PatternCase> {};

TEST_P(DtmbPatternTest, InfoMatchesTable1) {
  const PatternCase pattern = GetParam();
  const DtmbInfo info = dtmb_info(pattern.kind);
  EXPECT_EQ(info.s, pattern.s);
  EXPECT_EQ(info.p, pattern.p);
  EXPECT_NEAR(info.redundancy_ratio, pattern.rr, 1e-12);
}

TEST_P(DtmbPatternTest, InteriorPrimariesSeeExactlySSpares) {
  const PatternCase pattern = GetParam();
  for (const std::int32_t size : {8, 13, 21}) {
    const HexArray array = make_dtmb_array(pattern.kind, size, size);
    const InterstitialProperty prop = measure_interstitial_property(array);
    ASSERT_GT(prop.interior_primary_count, 0);
    EXPECT_EQ(prop.s_min, pattern.s) << "size " << size;
    EXPECT_EQ(prop.s_max, pattern.s) << "size " << size;
  }
}

TEST_P(DtmbPatternTest, InteriorSparesSeeExactlyPPrimaries) {
  const PatternCase pattern = GetParam();
  for (const std::int32_t size : {8, 13, 21}) {
    const HexArray array = make_dtmb_array(pattern.kind, size, size);
    const InterstitialProperty prop = measure_interstitial_property(array);
    ASSERT_GT(prop.interior_spare_count, 0);
    EXPECT_EQ(prop.p_min, pattern.p) << "size " << size;
    EXPECT_EQ(prop.p_max, pattern.p) << "size " << size;
  }
}

TEST_P(DtmbPatternTest, SpareAdjacencyStructure) {
  const PatternCase pattern = GetParam();
  const HexArray array = make_dtmb_array(pattern.kind, 12, 12);
  const InterstitialProperty prop = measure_interstitial_property(array);
  EXPECT_EQ(prop.spares_mutually_nonadjacent, pattern.spares_nonadjacent);
}

TEST_P(DtmbPatternTest, RedundancyRatioConvergesToTable1) {
  const PatternCase pattern = GetParam();
  // Growing arrays: measured RR -> asymptotic s/p (boundary effects decay;
  // allow small parity wiggle between consecutive sizes).
  double previous_error = 1e9;
  for (const std::int32_t size : {12, 24, 48}) {
    const HexArray array = make_dtmb_array(pattern.kind, size, size);
    const double error =
        std::abs(measured_redundancy_ratio(array) - pattern.rr);
    EXPECT_LT(error, previous_error + 5e-3) << "size " << size;
    previous_error = error;
  }
  const HexArray large = make_dtmb_array(pattern.kind, 60, 60);
  EXPECT_NEAR(measured_redundancy_ratio(large), pattern.rr, 0.01);
}

TEST_P(DtmbPatternTest, SpareSitePredicateMatchesArrayRoles) {
  const PatternCase pattern = GetParam();
  const HexArray array = make_dtmb_array(pattern.kind, 9, 9);
  for (hex::CellIndex cell = 0; cell < array.cell_count(); ++cell) {
    const bool spare_site =
        is_spare_site(pattern.kind, array.region().coord_at(cell));
    EXPECT_EQ(array.role(cell) == CellRole::kSpare, spare_site);
  }
}

TEST_P(DtmbPatternTest, PatternIsPeriodicUnderLatticeTranslation) {
  const PatternCase pattern = GetParam();
  // (84, 0) and (0, 84) are lattice vectors of every spare sublattice:
  // 84 is divisible by 7 (DTMB(1,6)), by 2 (2,6-A and 4,4), by 4 (2,6-B's
  // (0,4) period) and by 3 (3,6).
  for (std::int32_t q = -10; q <= 10; ++q) {
    for (std::int32_t r = -10; r <= 10; ++r) {
      const hex::HexCoord at{q, r};
      EXPECT_EQ(is_spare_site(pattern.kind, at),
                is_spare_site(pattern.kind, at + hex::HexCoord{84, 0}));
      EXPECT_EQ(is_spare_site(pattern.kind, at),
                is_spare_site(pattern.kind, at + hex::HexCoord{0, 84}));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, DtmbPatternTest,
                         ::testing::ValuesIn(kPatternCases),
                         [](const auto& test_info) {
                           switch (test_info.param.kind) {
                             case DtmbKind::kDtmb1_6: return "Dtmb1x6";
                             case DtmbKind::kDtmb2_6: return "Dtmb2x6A";
                             case DtmbKind::kDtmb2_6B: return "Dtmb2x6B";
                             case DtmbKind::kDtmb3_6: return "Dtmb3x6";
                             case DtmbKind::kDtmb4_4: return "Dtmb4x4";
                           }
                           return "Unknown";
                         });

TEST(Dtmb, VariantBDiffersFromVariantA) {
  // Same density and (s,p), different spare sites.
  bool differs = false;
  for (std::int32_t q = 0; q < 8 && !differs; ++q) {
    for (std::int32_t r = 0; r < 8 && !differs; ++r) {
      differs = is_spare_site(DtmbKind::kDtmb2_6, {q, r}) !=
                is_spare_site(DtmbKind::kDtmb2_6B, {q, r});
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Dtmb, Dtmb16IsPerfectCode) {
  // Every primary site has exactly one spare neighbour across a large patch
  // (index-7 perfect code on the triangular lattice).
  for (std::int32_t q = -12; q <= 12; ++q) {
    for (std::int32_t r = -12; r <= 12; ++r) {
      const hex::HexCoord at{q, r};
      if (is_spare_site(DtmbKind::kDtmb1_6, at)) continue;
      int spare_neighbors = 0;
      for (const hex::HexCoord nb : hex::neighbors(at)) {
        if (is_spare_site(DtmbKind::kDtmb1_6, nb)) ++spare_neighbors;
      }
      EXPECT_EQ(spare_neighbors, 1) << "at " << at;
    }
  }
}

TEST(Dtmb, MakeWithPrimariesMeetsFloor) {
  for (const DtmbKind kind : {DtmbKind::kDtmb1_6, DtmbKind::kDtmb2_6,
                              DtmbKind::kDtmb3_6, DtmbKind::kDtmb4_4}) {
    for (const std::int32_t target : {50, 100, 250}) {
      const HexArray array = make_dtmb_array_with_primaries(kind, target);
      EXPECT_GE(array.primary_count(), target);
      // Not wildly oversized: within one extra row/column band.
      EXPECT_LT(array.primary_count(), target + 4 * 60);
    }
  }
}

TEST(Dtmb, ClusterArrayExactCounts) {
  for (const std::int32_t clusters : {1, 4, 17, 50}) {
    const HexArray array = make_dtmb16_cluster_array(clusters);
    EXPECT_EQ(array.primary_count(), 6 * clusters);
    EXPECT_EQ(array.spare_count(), clusters);
  }
}

TEST(Dtmb, ClusterArrayEveryPrimaryHasItsSpare) {
  const HexArray array = make_dtmb16_cluster_array(20);
  for (const hex::CellIndex primary : array.primaries()) {
    EXPECT_EQ(array.spare_neighbors_of(primary).size(), 1u);
  }
  for (const hex::CellIndex spare : array.spares()) {
    EXPECT_EQ(array.primary_neighbors_of(spare).size(), 6u);
  }
}

TEST(Dtmb, ClusterArrayRejectsNonPositive) {
  EXPECT_THROW(make_dtmb16_cluster_array(0), ContractViolation);
}

TEST(Dtmb, NamesAreHuman) {
  EXPECT_EQ(dtmb_info(DtmbKind::kDtmb1_6).name, "DTMB(1,6)");
  EXPECT_EQ(dtmb_info(DtmbKind::kDtmb2_6B).name, "DTMB(2,6)-B");
}

}  // namespace
}  // namespace dmfb::biochip
