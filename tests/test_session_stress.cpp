// Concurrency stress suite for the session/campaign/obs stack — the
// workload the ThreadSanitizer CI job runs (ctest label: concurrency).
//
// The determinism contract ("bit-identical at any thread count") is only as
// good as the machinery's freedom from data races, so this file hammers the
// three concurrent structures the stack rests on:
//
//   1. one sim::Session shared by many threads issuing *overlapping* query
//      sets (cache hits, misses and in-flight joins all interleave),
//   2. the obs::Registry TLS install-epoch handshake, flipped between
//      registries and snapshotted while instrumented workers are running
//      (registries outlive the workers, per the documented lifecycle), and
//   3. the campaign runner at 8 outer workers against a serial reference.
//
// Every test also re-checks bit-identity, because a benign-looking race is
// exactly the kind of bug that turns into a one-in-a-thousand artifact diff.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "biochip/dtmb.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/session.hpp"

namespace dmfb::sim {
namespace {

using biochip::DtmbKind;

constexpr std::int32_t kHammerThreads = 8;

std::shared_ptr<const ChipDesign> shared_design() {
  return ChipDesign::make(
      biochip::make_dtmb_array_with_primaries(DtmbKind::kDtmb2_6, 60));
}

/// The overlapping query set every hammer thread walks (rotated per thread
/// so cache misses and hits interleave differently on each).
std::vector<YieldQuery> overlapping_queries() {
  std::vector<YieldQuery> queries;
  for (const double p : {0.88, 0.92, 0.95, 0.99}) {
    for (const auto engine :
         {graph::MatchingEngine::kHopcroftKarp, graph::MatchingEngine::kAuto}) {
      YieldQuery query;
      query.fault = FaultModel::bernoulli(p);
      query.runs = 400;
      query.engine = engine;
      query.threads = 1;
      queries.push_back(query);
    }
  }
  return queries;
}

TEST(SessionStress, ManyThreadsOverlappingQueriesStayBitIdentical) {
  const auto design = shared_design();
  const std::vector<YieldQuery> queries = overlapping_queries();

  // Serial reference answers, from a session nothing else touches.
  Session reference(design);
  std::vector<YieldEstimate> expected;
  expected.reserve(queries.size());
  for (const YieldQuery& query : queries) expected.push_back(reference.run(query));

  Session session(design);
  constexpr int kRounds = 3;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kHammerThreads);
  for (int t = 0; t < kHammerThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (std::size_t i = 0; i < queries.size(); ++i) {
          // Rotate the walk per thread so identical queries collide both
          // in-flight and via the cache.
          const std::size_t at = (i + static_cast<std::size_t>(t)) % queries.size();
          const YieldEstimate got = session.run(queries[at]);
          const YieldEstimate& want = expected[at];
          if (got.successes != want.successes || got.runs != want.runs ||
              got.value != want.value || got.ci95.lo != want.ci95.lo ||
              got.ci95.hi != want.ci95.hi) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);

  const Session::Stats stats = session.stats();
  EXPECT_EQ(stats.queries,
            static_cast<std::size_t>(kHammerThreads) * kRounds * queries.size());
  // Every distinct query computed exactly once, no matter the interleaving.
  EXPECT_EQ(stats.computed, queries.size());
}

TEST(SessionStress, SimultaneousIdenticalQueriesJoinOneComputation) {
  const auto design = shared_design();
  Session session(design);
  YieldQuery query;
  query.fault = FaultModel::bernoulli(0.93);
  query.runs = 20000;
  query.threads = 1;

  // All threads release at once onto the *same* expensive query: exactly
  // one computes, the rest must join the in-flight future and read the
  // same bits.
  std::atomic<int> ready{0};
  std::vector<YieldEstimate> results(
      static_cast<std::size_t>(kHammerThreads));
  std::vector<std::thread> threads;
  threads.reserve(kHammerThreads);
  for (int t = 0; t < kHammerThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kHammerThreads) std::this_thread::yield();
      results[static_cast<std::size_t>(t)] = session.run(query);
    });
  }
  for (auto& thread : threads) thread.join();

  for (int t = 1; t < kHammerThreads; ++t) {
    const auto& first = results[0];
    const auto& other = results[static_cast<std::size_t>(t)];
    EXPECT_EQ(first.successes, other.successes) << "thread " << t;
    EXPECT_EQ(first.runs, other.runs);
    EXPECT_EQ(first.value, other.value);
  }
  const Session::Stats stats = session.stats();
  EXPECT_EQ(stats.queries, static_cast<std::size_t>(kHammerThreads));
  EXPECT_EQ(stats.computed, 1u);
}

TEST(SessionStress, RegistryInstallSnapshotUninstallUnderLoad) {
  const auto design = shared_design();
  Session session(design);

  // Both registries are constructed before the workers start and destroyed
  // after they join: install/uninstall may flip mid-run (the TLS epoch
  // handshake re-resolves shards), but a shard's backing registry always
  // outlives its writers — the documented lifecycle.
  obs::Registry first;
  obs::Registry second;

  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> issued{0};
  std::vector<std::thread> workers;
  workers.reserve(kHammerThreads);
  for (int t = 0; t < kHammerThreads; ++t) {
    workers.emplace_back([&, t] {
      std::uint64_t round = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        YieldQuery query;
        query.fault = FaultModel::bernoulli(0.94);
        query.runs = 64;
        // A fresh seed per round defeats the cache: every query computes,
        // so the instrumented hot paths keep writing counters.
        query.seed = 0x5EED0000ULL + static_cast<std::uint64_t>(t) * 1000 + round;
        query.threads = 1;
        session.run(query);
        issued.fetch_add(1, std::memory_order_relaxed);
        ++round;
      }
    });
  }

  // Flip the installed registry and snapshot it while the workers write.
  for (int flip = 0; flip < 25; ++flip) {
    obs::Registry& registry = (flip % 2 == 0) ? first : second;
    registry.install();
    std::this_thread::yield();
    const obs::Snapshot live = registry.snapshot();  // concurrent snapshot
    EXPECT_GE(live.counter(obs::Metric::kSessionQueries), 0);
    registry.uninstall();
  }
  stop.store(true);
  for (auto& worker : workers) worker.join();

  // Quiescent now: both registries' totals must be internally consistent
  // and bounded by what the workers actually issued.
  const obs::Snapshot a = first.snapshot();
  const obs::Snapshot b = second.snapshot();
  const std::int64_t counted = a.counter(obs::Metric::kSessionQueries) +
                               b.counter(obs::Metric::kSessionQueries);
  EXPECT_LE(counted, issued.load());
  const std::int64_t computed = a.counter(obs::Metric::kSessionComputed) +
                                b.counter(obs::Metric::kSessionComputed);
  EXPECT_LE(computed, counted);

  // After the churn, a cleanly-bracketed run still attributes exactly.
  obs::Registry exact;
  exact.install();
  YieldQuery query;
  query.fault = FaultModel::bernoulli(0.9);
  query.runs = 32;
  query.seed = 0xA11C1EA4ULL;
  query.threads = 1;
  session.run(query);
  exact.uninstall();
  const obs::Snapshot snap = exact.snapshot();
  EXPECT_EQ(snap.counter(obs::Metric::kSessionQueries), 1);
  EXPECT_EQ(snap.counter(obs::Metric::kSimRuns), 32);
}

TEST(SessionStress, ConcurrentSpansProduceAValidTrace) {
  const auto design = shared_design();
  Session session(design);
  obs::TraceRecorder recorder(1u << 12);
  recorder.install();

  std::vector<std::thread> threads;
  threads.reserve(kHammerThreads);
  for (int t = 0; t < kHammerThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        obs::ScopedSpan outer("stress.outer", "test");
        {
          obs::ScopedSpan inner("stress.inner", "test");
          if (inner.active() && i % 8 == 0) {
            inner.set_args(R"({"thread":)" + std::to_string(t) + "}");
          }
        }
        if (i % 10 == t % 10) {
          YieldQuery query;
          query.fault = FaultModel::bernoulli(0.92);
          query.runs = 64;
          query.seed = 0xCAFE + static_cast<std::uint64_t>(i);
          query.threads = 1;
          session.run(query);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  recorder.uninstall();

  std::ostringstream out;
  recorder.write(out);
  std::string error;
  EXPECT_TRUE(obs::validate_trace_json(out.str(), &error)) << error;
}

TEST(SessionStress, V2StreamsEightThreadsOverlappingQueriesStayBitIdentical) {
  // The v2 counter-stream contract (rng_version = v2) partitions runs into
  // per-thread ranges with no shared generator state at all — hammer it the
  // same way as v1: 8 threads, overlapping query sets, and every inner
  // kernel itself running multi-threaded so range splits interleave.
  const auto design = shared_design();

  std::vector<YieldQuery> queries;
  for (const double p : {0.90, 0.95, 0.99}) {
    for (const std::int32_t inner_threads : {1, 4}) {
      YieldQuery query;
      query.fault = FaultModel::bernoulli(p);
      query.runs = 600;
      query.rng_version = RngVersion::kV2;
      query.threads = inner_threads;
      queries.push_back(query);
    }
  }

  // Reference answers from a fresh session per query (threads = 1 and
  // threads = 4 share a query_key, so one shared session would serve the
  // second from cache and the pair check below would be vacuous). The
  // variants of each p must agree bit-for-bit when actually recomputed.
  std::vector<YieldEstimate> expected;
  expected.reserve(queries.size());
  for (const YieldQuery& query : queries) {
    Session reference(design);
    expected.push_back(reference.run(query));
  }
  for (std::size_t i = 0; i + 1 < queries.size(); i += 2) {
    EXPECT_EQ(expected[i].successes, expected[i + 1].successes);
    EXPECT_EQ(expected[i].value, expected[i + 1].value);
  }

  Session session(design);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kHammerThreads);
  for (int t = 0; t < kHammerThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 3; ++round) {
        for (std::size_t i = 0; i < queries.size(); ++i) {
          const std::size_t at =
              (i + static_cast<std::size_t>(t)) % queries.size();
          const YieldEstimate got = session.run(queries[at]);
          const YieldEstimate& want = expected[at];
          if (got.successes != want.successes || got.runs != want.runs ||
              got.value != want.value || got.ci95.lo != want.ci95.lo ||
              got.ci95.hi != want.ci95.hi) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(SessionStress, CampaignRunnerEightWorkersMatchesSerial) {
  // A fig9-smoke-shaped grid with deliberate duplicate sweep values, so the
  // 8-worker run exercises the session-cache dedupe path too.
  constexpr std::string_view kSpec =
      "name = stress_grid\n"
      "runs = 200\n"
      "seed = 0xD0E5A11\n"
      "design = dtmb2_6, dtmb3_6\n"
      "primaries = 60\n"
      "injector = bernoulli\n"
      "p = 0.88, 0.92, 0.92, 0.96, 0.99\n"
      "sink = csv\n";

  const auto run_at = [&](std::int32_t threads) {
    campaign::ParseResult parsed = campaign::parse_campaign_spec(kSpec);
    EXPECT_TRUE(parsed.ok()) << parsed.error_text();
    parsed.spec->threads = threads;
    campaign::CampaignRunner runner(std::move(*parsed.spec));
    return runner.run();
  };

  const std::vector<campaign::PointResult> serial = run_at(1);
  const std::vector<campaign::PointResult> parallel = run_at(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].estimate.successes, parallel[i].estimate.successes)
        << "point " << i;
    EXPECT_EQ(serial[i].estimate.value, parallel[i].estimate.value);
    EXPECT_EQ(serial[i].estimate.ci95.lo, parallel[i].estimate.ci95.lo);
    EXPECT_EQ(serial[i].estimate.ci95.hi, parallel[i].estimate.ci95.hi);
    EXPECT_EQ(serial[i].effective_yield, parallel[i].effective_yield);
  }
}

}  // namespace
}  // namespace dmfb::sim
