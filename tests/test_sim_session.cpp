// Equivalence and contract tests for the sim layer: ChipDesign snapshots,
// FaultState repairability, and the Session query API.
//
// The load-bearing suite is the bit-identity pin: sim::Session must
// reproduce the legacy generic HexArray engine (yield::mc_yield with a
// fault::*Injector callback) success-for-success, for every
// (policy x engine x pool) combination, at threads 1 and 4. That is what
// lets mc_yield_bernoulli / mc_yield_fixed_faults / compound_yield /
// CampaignRunner ride on the session without moving a single golden number.
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "assay/multiplexed_chip.hpp"
#include "biochip/dtmb.hpp"
#include "common/contracts.hpp"
#include "fault/injector.hpp"
#include "sim/session.hpp"
#include "yield/compound.hpp"
#include "yield/monte_carlo.hpp"

namespace dmfb::sim {
namespace {

using biochip::DtmbKind;
using reconfig::CoveragePolicy;
using reconfig::ReplacementPool;
using graph::MatchingEngine;

biochip::HexArray make_test_array() {
  auto array = biochip::make_dtmb_array(DtmbKind::kDtmb2_6, 9, 9);
  // Mark a quarter of the primaries assay-used so the used-faulty coverage
  // policy and the spares-and-unused-primaries pool both have real work.
  std::int32_t marked = 0;
  for (const auto primary : array.primaries()) {
    if (marked >= array.primary_count() / 4) break;
    array.set_usage(primary, biochip::CellUsage::kAssayUsed);
    ++marked;
  }
  return array;
}

/// Legacy reference: the generic HexArray engine with the real injectors.
yield::YieldEstimate legacy_reference(biochip::HexArray& array,
                                      const FaultModel& model,
                                      const yield::McOptions& options) {
  switch (model.kind) {
    case FaultModel::Kind::kBernoulli: {
      const fault::BernoulliInjector injector(model.param);
      return yield::mc_yield(
          array,
          [&](biochip::HexArray& a, Rng& rng) { injector.inject(a, rng); },
          options);
    }
    case FaultModel::Kind::kFixedCount: {
      const fault::FixedCountInjector injector(
          static_cast<std::int32_t>(model.param));
      return yield::mc_yield(
          array,
          [&](biochip::HexArray& a, Rng& rng) { injector.inject(a, rng); },
          options);
    }
    case FaultModel::Kind::kClustered: {
      const fault::ClusteredInjector injector(
          model.param, model.cluster.radius, model.cluster.core_kill,
          model.cluster.edge_kill);
      return yield::mc_yield(
          array,
          [&](biochip::HexArray& a, Rng& rng) { injector.inject(a, rng); },
          options);
    }
    case FaultModel::Kind::kParametric:
    case FaultModel::Kind::kMixture:
      // Covered by the dedicated equivalence suite
      // (tests/test_sim_fault_models.cpp).
      break;
  }
  throw ContractViolation("unknown model kind");
}

// --------------------------------------------------------- equivalence pin

TEST(SimEquivalence, BitIdenticalToLegacyForEveryEngineCombination) {
  auto array = make_test_array();
  const auto design = ChipDesign::make(array);
  // One session per thread count: `threads` is not part of the query cache
  // key, so a shared session would serve the threads=4 leg from the serial
  // run's cache entry instead of exercising the parallel path.
  Session serial_session(design);
  Session parallel_session(design);
  for (const FaultModel& model :
       {FaultModel::bernoulli(0.94), FaultModel::fixed_count(6),
        FaultModel::clustered(1.5, {1, 0.9, 0.3})}) {
    for (const CoveragePolicy policy :
         {CoveragePolicy::kAllFaultyPrimaries,
          CoveragePolicy::kUsedFaultyPrimaries}) {
      for (const MatchingEngine engine :
           {MatchingEngine::kHopcroftKarp, MatchingEngine::kKuhn,
            MatchingEngine::kDinic}) {
        for (const ReplacementPool pool :
             {ReplacementPool::kSparesOnly,
              ReplacementPool::kSparesAndUnusedPrimaries}) {
          for (const std::int32_t threads : {1, 4}) {
            yield::McOptions options;
            options.runs = 300;
            options.seed = 0xFACADE;
            options.threads = threads;
            options.policy = policy;
            options.engine = engine;
            options.pool = pool;
            const auto legacy = legacy_reference(array, model, options);
            Session& session =
                threads == 1 ? serial_session : parallel_session;
            const auto ported =
                session.run(yield::to_query(options, model));
            EXPECT_EQ(ported.successes, legacy.successes)
                << "model=" << static_cast<int>(model.kind)
                << " policy=" << static_cast<int>(policy)
                << " engine=" << static_cast<int>(engine)
                << " pool=" << static_cast<int>(pool)
                << " threads=" << threads;
            EXPECT_DOUBLE_EQ(ported.value, legacy.value);
            EXPECT_DOUBLE_EQ(ported.ci95.lo, legacy.ci95.lo);
            EXPECT_DOUBLE_EQ(ported.ci95.hi, legacy.ci95.hi);
          }
        }
      }
    }
  }
}

TEST(SimEquivalence, ShimsMatchSessionOnMultiplexedChip) {
  // The Section-7 multiplexed chip exercises realistic usage marking.
  auto chip = assay::make_multiplexed_chip();
  yield::McOptions options;
  options.runs = 400;
  options.policy = CoveragePolicy::kUsedFaultyPrimaries;
  auto legacy_array = chip.array;
  const auto shim = yield::mc_yield_bernoulli(legacy_array, 0.95, options);

  Session session(chip.array);
  const auto direct = session.run(
      yield::to_query(options, FaultModel::bernoulli(0.95)));
  EXPECT_EQ(shim.successes, direct.successes);
}

TEST(SimEquivalence, CompoundYieldMatchesSessionComposition) {
  auto array = biochip::make_dtmb_array(DtmbKind::kDtmb2_6, 8, 8);
  yield::McOptions options;
  options.runs = 200;
  const auto pmf = yield::poisson_defect_pmf(array.cell_count(), 2.0);
  const auto via_array = yield::compound_yield(array, pmf, options, 1e-4);

  Session session(array);
  const auto via_session = yield::compound_yield(
      session, pmf, yield::to_query(options, FaultModel::fixed_count(0)),
      1e-4);
  EXPECT_DOUBLE_EQ(via_array.value, via_session.value);
  EXPECT_DOUBLE_EQ(via_array.truncated_mass, via_session.truncated_mass);
}

// ------------------------------------------------------------- determinism

TEST(SimSession, ThreadCountNeverChangesTheEstimate) {
  Session session(biochip::make_dtmb_array(DtmbKind::kDtmb3_6, 8, 8));
  YieldQuery query;
  query.fault = FaultModel::bernoulli(0.93);
  query.runs = 1500;
  query.seed = 20260730;
  query.threads = 1;
  const auto serial = session.run(query);
  for (const std::int32_t threads : {0, 2, 3, 7}) {
    query.threads = threads;  // not part of the cache key
    const auto parallel = session.run(query);
    EXPECT_EQ(parallel.successes, serial.successes) << "threads=" << threads;
  }
  // All five calls hit the same cache entry: threads is not identity.
  EXPECT_EQ(session.stats().queries, 5u);
  EXPECT_EQ(session.stats().computed, 1u);
}

TEST(SimSession, AdaptiveStoppingIsThreadInvariant) {
  Session session(biochip::make_dtmb_array(DtmbKind::kDtmb2_6, 10, 10));
  YieldQuery query;
  query.fault = FaultModel::bernoulli(0.95);
  query.runs = 50000;
  query.target_ci_half_width = 0.02;
  query.threads = 1;
  const auto serial = session.run(query);
  // Stops at a chunk boundary, well under the cap, with the target met.
  EXPECT_LT(serial.runs, 50000);
  EXPECT_EQ(serial.runs % kAdaptiveChunkRuns, 0);
  EXPECT_LE(serial.ci95.width() / 2.0, 0.02);

  Session fresh(session.design_ptr());
  query.threads = 4;
  const auto parallel = fresh.run(query);
  EXPECT_EQ(parallel.runs, serial.runs);
  EXPECT_EQ(parallel.successes, serial.successes);
}

TEST(SimSession, AdaptiveStoppingRespectsTheRunCap) {
  Session session(biochip::make_dtmb_array(DtmbKind::kDtmb2_6, 8, 8));
  YieldQuery query;
  query.fault = FaultModel::bernoulli(0.9);
  query.runs = 700;  // cap below one adaptive chunk
  query.target_ci_half_width = 1e-6;  // unreachable
  const auto estimate = session.run(query);
  EXPECT_EQ(estimate.runs, 700);
}

// ------------------------------------------------------------------- cache

TEST(SimSession, CachesIdenticalQueriesAcrossBatches) {
  Session session(biochip::make_dtmb_array(DtmbKind::kDtmb2_6, 8, 8));
  YieldQuery query;
  query.fault = FaultModel::bernoulli(0.9);
  query.runs = 100;
  const std::vector<YieldQuery> batch = {query, query, query};
  const auto results = session.run_all(batch);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].successes, results[1].successes);
  EXPECT_EQ(session.stats().queries, 3u);
  EXPECT_EQ(session.stats().computed, 1u);
  EXPECT_EQ(session.stats().cache_hits(), 2u);

  session.run(query);  // later single call: still cached
  EXPECT_EQ(session.stats().computed, 1u);
}

TEST(SimSession, DistinctQueriesGetDistinctKeys) {
  YieldQuery base;
  base.fault = FaultModel::bernoulli(0.9);
  const std::string key = query_key(base);

  YieldQuery other = base;
  other.fault = FaultModel::bernoulli(0.91);
  EXPECT_NE(query_key(other), key);
  other = base;
  other.seed ^= 1;
  EXPECT_NE(query_key(other), key);
  other = base;
  other.engine = MatchingEngine::kKuhn;
  EXPECT_NE(query_key(other), key);
  other = base;
  other.target_ci_half_width = 0.01;
  EXPECT_NE(query_key(other), key);
  other = base;
  other.threads = 7;  // scheduling knob: same identity
  EXPECT_EQ(query_key(other), key);
}

TEST(SimSession, ConcurrentDuplicateQueriesComputeOnce) {
  Session session(biochip::make_dtmb_array(DtmbKind::kDtmb2_6, 8, 8));
  YieldQuery query;
  query.fault = FaultModel::bernoulli(0.93);
  query.runs = 2000;
  std::vector<std::thread> callers;
  std::vector<yield::YieldEstimate> results(4);
  for (std::size_t i = 0; i < results.size(); ++i) {
    callers.emplace_back(
        [&, i] { results[i] = session.run(query); });
  }
  for (auto& caller : callers) caller.join();
  for (const auto& result : results) {
    EXPECT_EQ(result.successes, results[0].successes);
  }
  EXPECT_EQ(session.stats().queries, 4u);
  EXPECT_EQ(session.stats().computed, 1u);
}

// ----------------------------------------------------------- design & state

TEST(ChipDesign, RejectsFaultyArrays) {
  auto array = biochip::make_dtmb_array(DtmbKind::kDtmb2_6, 6, 6);
  array.set_health(0, biochip::CellHealth::kFaulty);
  EXPECT_THROW(ChipDesign::make(array), ContractViolation);
}

TEST(ChipDesign, SnapshotIsIndependentOfSourceMutations) {
  auto array = biochip::make_dtmb_array(DtmbKind::kDtmb2_6, 6, 6);
  const auto design = ChipDesign::make(array);
  array.set_health(0, biochip::CellHealth::kFaulty);
  EXPECT_EQ(design->array().faulty_count(), 0);
}

TEST(FaultState, RepairableAgreesWithLocalReconfigurer) {
  auto array = make_test_array();
  const auto design = ChipDesign::make(array);
  FaultState state(design);
  Rng rng(123);
  const fault::BernoulliInjector injector(0.9);
  for (std::int32_t trial = 0; trial < 200; ++trial) {
    Rng legacy_rng = rng;  // same stream for both injections
    injector.inject(array, rng);
    inject(FaultModel::bernoulli(0.9), state, legacy_rng);
    for (const CoveragePolicy policy :
         {CoveragePolicy::kAllFaultyPrimaries,
          CoveragePolicy::kUsedFaultyPrimaries}) {
      for (const ReplacementPool pool :
           {ReplacementPool::kSparesOnly,
            ReplacementPool::kSparesAndUnusedPrimaries}) {
        const reconfig::LocalReconfigurer reconfigurer(
            policy, MatchingEngine::kHopcroftKarp, pool);
        EXPECT_EQ(state.repairable(policy, MatchingEngine::kHopcroftKarp,
                                   pool),
                  reconfigurer.feasible(array))
            << "trial=" << trial;
      }
    }
    array.reset_health();
    state.reset();
  }
}

TEST(FaultState, ResetClearsEverything) {
  const auto design =
      ChipDesign::make(biochip::make_dtmb_array(DtmbKind::kDtmb2_6, 6, 6));
  FaultState state(design);
  state.set_faulty(3);
  state.set_faulty(3);  // idempotent
  state.set_faulty(7);
  EXPECT_EQ(state.faulty_count(), 2);
  EXPECT_TRUE(state.is_faulty(3));
  state.reset();
  EXPECT_EQ(state.faulty_count(), 0);
  EXPECT_FALSE(state.is_faulty(3));
  EXPECT_FALSE(state.is_faulty(7));
}

// -------------------------------------------------- YieldEstimate semantics

TEST(YieldEstimateCounts, ZeroRunsIsDefinedAndVacuous) {
  const auto estimate = YieldEstimate::from_counts(0, 0);
  EXPECT_DOUBLE_EQ(estimate.value, 0.0);
  EXPECT_DOUBLE_EQ(estimate.ci95.lo, 0.0);
  EXPECT_DOUBLE_EQ(estimate.ci95.hi, 1.0);
  EXPECT_EQ(estimate.runs, 0);
  EXPECT_EQ(estimate.successes, 0);
}

TEST(YieldEstimateCounts, ZeroSuccessesPinLowerBound) {
  const auto estimate = YieldEstimate::from_counts(0, 50);
  EXPECT_DOUBLE_EQ(estimate.value, 0.0);
  EXPECT_DOUBLE_EQ(estimate.ci95.lo, 0.0);
  EXPECT_GT(estimate.ci95.hi, 0.0);  // still uncertain upward
  EXPECT_LT(estimate.ci95.hi, 1.0);
}

TEST(YieldEstimateCounts, AllSuccessesPinUpperBound) {
  const auto estimate = YieldEstimate::from_counts(50, 50);
  EXPECT_DOUBLE_EQ(estimate.value, 1.0);
  EXPECT_DOUBLE_EQ(estimate.ci95.hi, 1.0);
  EXPECT_GT(estimate.ci95.lo, 0.0);
  EXPECT_LT(estimate.ci95.lo, 1.0);
}

TEST(YieldEstimateCounts, RejectsImpossibleCounts) {
  EXPECT_THROW(YieldEstimate::from_counts(-1, 10), ContractViolation);
  EXPECT_THROW(YieldEstimate::from_counts(11, 10), ContractViolation);
  EXPECT_THROW(YieldEstimate::from_counts(0, -1), ContractViolation);
}

// ------------------------------------------------------------- validation

TEST(SimSession, ValidatesQueries) {
  Session session(biochip::make_dtmb_array(DtmbKind::kDtmb2_6, 6, 6));
  YieldQuery query;
  query.runs = 0;
  EXPECT_THROW(session.run(query), ContractViolation);
  query.runs = 10;
  query.threads = -1;
  EXPECT_THROW(session.run(query), ContractViolation);
  query.threads = 1;
  query.fault = FaultModel::bernoulli(1.5);
  EXPECT_THROW(session.run(query), ContractViolation);
  query.fault = FaultModel::fixed_count(10'000);
  EXPECT_THROW(session.run(query), ContractViolation);
  query.fault = FaultModel::clustered(1.0, {1, 0.5, 0.9});  // edge > core
  EXPECT_THROW(session.run(query), ContractViolation);
}

}  // namespace
}  // namespace dmfb::sim
