file(REMOVE_RECURSE
  "CMakeFiles/dmfb_testplan.dir/concurrent_test.cpp.o"
  "CMakeFiles/dmfb_testplan.dir/concurrent_test.cpp.o.d"
  "CMakeFiles/dmfb_testplan.dir/stimulus_test.cpp.o"
  "CMakeFiles/dmfb_testplan.dir/stimulus_test.cpp.o.d"
  "libdmfb_testplan.a"
  "libdmfb_testplan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmfb_testplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
