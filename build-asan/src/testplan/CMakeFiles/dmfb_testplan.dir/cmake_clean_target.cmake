file(REMOVE_RECURSE
  "libdmfb_testplan.a"
)
