# Empty dependencies file for dmfb_testplan.
# This may be replaced when dependencies are built.
