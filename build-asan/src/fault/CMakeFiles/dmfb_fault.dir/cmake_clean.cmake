file(REMOVE_RECURSE
  "CMakeFiles/dmfb_fault.dir/fault_model.cpp.o"
  "CMakeFiles/dmfb_fault.dir/fault_model.cpp.o.d"
  "CMakeFiles/dmfb_fault.dir/injector.cpp.o"
  "CMakeFiles/dmfb_fault.dir/injector.cpp.o.d"
  "CMakeFiles/dmfb_fault.dir/mixture.cpp.o"
  "CMakeFiles/dmfb_fault.dir/mixture.cpp.o.d"
  "CMakeFiles/dmfb_fault.dir/parametric.cpp.o"
  "CMakeFiles/dmfb_fault.dir/parametric.cpp.o.d"
  "libdmfb_fault.a"
  "libdmfb_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmfb_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
