# Empty dependencies file for dmfb_fault.
# This may be replaced when dependencies are built.
