file(REMOVE_RECURSE
  "libdmfb_fault.a"
)
