
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fault/fault_model.cpp" "src/fault/CMakeFiles/dmfb_fault.dir/fault_model.cpp.o" "gcc" "src/fault/CMakeFiles/dmfb_fault.dir/fault_model.cpp.o.d"
  "/root/repo/src/fault/injector.cpp" "src/fault/CMakeFiles/dmfb_fault.dir/injector.cpp.o" "gcc" "src/fault/CMakeFiles/dmfb_fault.dir/injector.cpp.o.d"
  "/root/repo/src/fault/mixture.cpp" "src/fault/CMakeFiles/dmfb_fault.dir/mixture.cpp.o" "gcc" "src/fault/CMakeFiles/dmfb_fault.dir/mixture.cpp.o.d"
  "/root/repo/src/fault/parametric.cpp" "src/fault/CMakeFiles/dmfb_fault.dir/parametric.cpp.o" "gcc" "src/fault/CMakeFiles/dmfb_fault.dir/parametric.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/dmfb_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/biochip/CMakeFiles/dmfb_biochip.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/hexgrid/CMakeFiles/dmfb_hexgrid.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/graph/CMakeFiles/dmfb_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
