file(REMOVE_RECURSE
  "libdmfb_fluidics.a"
)
