# Empty dependencies file for dmfb_fluidics.
# This may be replaced when dependencies are built.
