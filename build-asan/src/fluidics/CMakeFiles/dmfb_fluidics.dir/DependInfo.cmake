
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fluidics/actuation.cpp" "src/fluidics/CMakeFiles/dmfb_fluidics.dir/actuation.cpp.o" "gcc" "src/fluidics/CMakeFiles/dmfb_fluidics.dir/actuation.cpp.o.d"
  "/root/repo/src/fluidics/constraints.cpp" "src/fluidics/CMakeFiles/dmfb_fluidics.dir/constraints.cpp.o" "gcc" "src/fluidics/CMakeFiles/dmfb_fluidics.dir/constraints.cpp.o.d"
  "/root/repo/src/fluidics/electrowetting.cpp" "src/fluidics/CMakeFiles/dmfb_fluidics.dir/electrowetting.cpp.o" "gcc" "src/fluidics/CMakeFiles/dmfb_fluidics.dir/electrowetting.cpp.o.d"
  "/root/repo/src/fluidics/mixture.cpp" "src/fluidics/CMakeFiles/dmfb_fluidics.dir/mixture.cpp.o" "gcc" "src/fluidics/CMakeFiles/dmfb_fluidics.dir/mixture.cpp.o.d"
  "/root/repo/src/fluidics/placement.cpp" "src/fluidics/CMakeFiles/dmfb_fluidics.dir/placement.cpp.o" "gcc" "src/fluidics/CMakeFiles/dmfb_fluidics.dir/placement.cpp.o.d"
  "/root/repo/src/fluidics/router.cpp" "src/fluidics/CMakeFiles/dmfb_fluidics.dir/router.cpp.o" "gcc" "src/fluidics/CMakeFiles/dmfb_fluidics.dir/router.cpp.o.d"
  "/root/repo/src/fluidics/simulator.cpp" "src/fluidics/CMakeFiles/dmfb_fluidics.dir/simulator.cpp.o" "gcc" "src/fluidics/CMakeFiles/dmfb_fluidics.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/dmfb_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/biochip/CMakeFiles/dmfb_biochip.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/hexgrid/CMakeFiles/dmfb_hexgrid.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/reconfig/CMakeFiles/dmfb_reconfig.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/graph/CMakeFiles/dmfb_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
