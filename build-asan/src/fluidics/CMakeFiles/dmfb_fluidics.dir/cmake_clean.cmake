file(REMOVE_RECURSE
  "CMakeFiles/dmfb_fluidics.dir/actuation.cpp.o"
  "CMakeFiles/dmfb_fluidics.dir/actuation.cpp.o.d"
  "CMakeFiles/dmfb_fluidics.dir/constraints.cpp.o"
  "CMakeFiles/dmfb_fluidics.dir/constraints.cpp.o.d"
  "CMakeFiles/dmfb_fluidics.dir/electrowetting.cpp.o"
  "CMakeFiles/dmfb_fluidics.dir/electrowetting.cpp.o.d"
  "CMakeFiles/dmfb_fluidics.dir/mixture.cpp.o"
  "CMakeFiles/dmfb_fluidics.dir/mixture.cpp.o.d"
  "CMakeFiles/dmfb_fluidics.dir/placement.cpp.o"
  "CMakeFiles/dmfb_fluidics.dir/placement.cpp.o.d"
  "CMakeFiles/dmfb_fluidics.dir/router.cpp.o"
  "CMakeFiles/dmfb_fluidics.dir/router.cpp.o.d"
  "CMakeFiles/dmfb_fluidics.dir/simulator.cpp.o"
  "CMakeFiles/dmfb_fluidics.dir/simulator.cpp.o.d"
  "libdmfb_fluidics.a"
  "libdmfb_fluidics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmfb_fluidics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
