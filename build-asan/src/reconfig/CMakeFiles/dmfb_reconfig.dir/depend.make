# Empty dependencies file for dmfb_reconfig.
# This may be replaced when dependencies are built.
