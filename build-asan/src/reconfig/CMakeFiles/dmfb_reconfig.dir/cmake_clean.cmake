file(REMOVE_RECURSE
  "CMakeFiles/dmfb_reconfig.dir/local_reconfig.cpp.o"
  "CMakeFiles/dmfb_reconfig.dir/local_reconfig.cpp.o.d"
  "CMakeFiles/dmfb_reconfig.dir/shifted_replacement.cpp.o"
  "CMakeFiles/dmfb_reconfig.dir/shifted_replacement.cpp.o.d"
  "libdmfb_reconfig.a"
  "libdmfb_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmfb_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
