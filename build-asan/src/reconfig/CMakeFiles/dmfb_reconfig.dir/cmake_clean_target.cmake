file(REMOVE_RECURSE
  "libdmfb_reconfig.a"
)
