
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reconfig/local_reconfig.cpp" "src/reconfig/CMakeFiles/dmfb_reconfig.dir/local_reconfig.cpp.o" "gcc" "src/reconfig/CMakeFiles/dmfb_reconfig.dir/local_reconfig.cpp.o.d"
  "/root/repo/src/reconfig/shifted_replacement.cpp" "src/reconfig/CMakeFiles/dmfb_reconfig.dir/shifted_replacement.cpp.o" "gcc" "src/reconfig/CMakeFiles/dmfb_reconfig.dir/shifted_replacement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/dmfb_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/biochip/CMakeFiles/dmfb_biochip.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/graph/CMakeFiles/dmfb_graph.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/hexgrid/CMakeFiles/dmfb_hexgrid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
