# Empty dependencies file for dmfb_assay.
# This may be replaced when dependencies are built.
