
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/assay/assay_scheduler.cpp" "src/assay/CMakeFiles/dmfb_assay.dir/assay_scheduler.cpp.o" "gcc" "src/assay/CMakeFiles/dmfb_assay.dir/assay_scheduler.cpp.o.d"
  "/root/repo/src/assay/chemistry.cpp" "src/assay/CMakeFiles/dmfb_assay.dir/chemistry.cpp.o" "gcc" "src/assay/CMakeFiles/dmfb_assay.dir/chemistry.cpp.o.d"
  "/root/repo/src/assay/list_scheduler.cpp" "src/assay/CMakeFiles/dmfb_assay.dir/list_scheduler.cpp.o" "gcc" "src/assay/CMakeFiles/dmfb_assay.dir/list_scheduler.cpp.o.d"
  "/root/repo/src/assay/multiplexed_chip.cpp" "src/assay/CMakeFiles/dmfb_assay.dir/multiplexed_chip.cpp.o" "gcc" "src/assay/CMakeFiles/dmfb_assay.dir/multiplexed_chip.cpp.o.d"
  "/root/repo/src/assay/sequencing_graph.cpp" "src/assay/CMakeFiles/dmfb_assay.dir/sequencing_graph.cpp.o" "gcc" "src/assay/CMakeFiles/dmfb_assay.dir/sequencing_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/dmfb_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/biochip/CMakeFiles/dmfb_biochip.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/fluidics/CMakeFiles/dmfb_fluidics.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/reconfig/CMakeFiles/dmfb_reconfig.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/graph/CMakeFiles/dmfb_graph.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/hexgrid/CMakeFiles/dmfb_hexgrid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
