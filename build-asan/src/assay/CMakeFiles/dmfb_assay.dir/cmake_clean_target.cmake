file(REMOVE_RECURSE
  "libdmfb_assay.a"
)
