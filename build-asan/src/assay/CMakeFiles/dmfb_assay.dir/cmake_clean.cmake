file(REMOVE_RECURSE
  "CMakeFiles/dmfb_assay.dir/assay_scheduler.cpp.o"
  "CMakeFiles/dmfb_assay.dir/assay_scheduler.cpp.o.d"
  "CMakeFiles/dmfb_assay.dir/chemistry.cpp.o"
  "CMakeFiles/dmfb_assay.dir/chemistry.cpp.o.d"
  "CMakeFiles/dmfb_assay.dir/list_scheduler.cpp.o"
  "CMakeFiles/dmfb_assay.dir/list_scheduler.cpp.o.d"
  "CMakeFiles/dmfb_assay.dir/multiplexed_chip.cpp.o"
  "CMakeFiles/dmfb_assay.dir/multiplexed_chip.cpp.o.d"
  "CMakeFiles/dmfb_assay.dir/sequencing_graph.cpp.o"
  "CMakeFiles/dmfb_assay.dir/sequencing_graph.cpp.o.d"
  "libdmfb_assay.a"
  "libdmfb_assay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmfb_assay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
