# Empty dependencies file for dmfb_core.
# This may be replaced when dependencies are built.
