file(REMOVE_RECURSE
  "libdmfb_core.a"
)
