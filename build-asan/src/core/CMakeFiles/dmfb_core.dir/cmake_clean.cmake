file(REMOVE_RECURSE
  "CMakeFiles/dmfb_core.dir/defect_tolerant_biochip.cpp.o"
  "CMakeFiles/dmfb_core.dir/defect_tolerant_biochip.cpp.o.d"
  "CMakeFiles/dmfb_core.dir/design_advisor.cpp.o"
  "CMakeFiles/dmfb_core.dir/design_advisor.cpp.o.d"
  "libdmfb_core.a"
  "libdmfb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmfb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
