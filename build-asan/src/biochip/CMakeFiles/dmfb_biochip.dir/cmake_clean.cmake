file(REMOVE_RECURSE
  "CMakeFiles/dmfb_biochip.dir/dtmb.cpp.o"
  "CMakeFiles/dmfb_biochip.dir/dtmb.cpp.o.d"
  "CMakeFiles/dmfb_biochip.dir/hex_array.cpp.o"
  "CMakeFiles/dmfb_biochip.dir/hex_array.cpp.o.d"
  "CMakeFiles/dmfb_biochip.dir/redundancy.cpp.o"
  "CMakeFiles/dmfb_biochip.dir/redundancy.cpp.o.d"
  "CMakeFiles/dmfb_biochip.dir/square_array.cpp.o"
  "CMakeFiles/dmfb_biochip.dir/square_array.cpp.o.d"
  "libdmfb_biochip.a"
  "libdmfb_biochip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmfb_biochip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
