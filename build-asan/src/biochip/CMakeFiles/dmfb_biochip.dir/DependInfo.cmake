
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/biochip/dtmb.cpp" "src/biochip/CMakeFiles/dmfb_biochip.dir/dtmb.cpp.o" "gcc" "src/biochip/CMakeFiles/dmfb_biochip.dir/dtmb.cpp.o.d"
  "/root/repo/src/biochip/hex_array.cpp" "src/biochip/CMakeFiles/dmfb_biochip.dir/hex_array.cpp.o" "gcc" "src/biochip/CMakeFiles/dmfb_biochip.dir/hex_array.cpp.o.d"
  "/root/repo/src/biochip/redundancy.cpp" "src/biochip/CMakeFiles/dmfb_biochip.dir/redundancy.cpp.o" "gcc" "src/biochip/CMakeFiles/dmfb_biochip.dir/redundancy.cpp.o.d"
  "/root/repo/src/biochip/square_array.cpp" "src/biochip/CMakeFiles/dmfb_biochip.dir/square_array.cpp.o" "gcc" "src/biochip/CMakeFiles/dmfb_biochip.dir/square_array.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/dmfb_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/graph/CMakeFiles/dmfb_graph.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/hexgrid/CMakeFiles/dmfb_hexgrid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
