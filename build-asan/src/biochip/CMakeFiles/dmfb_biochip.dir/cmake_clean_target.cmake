file(REMOVE_RECURSE
  "libdmfb_biochip.a"
)
