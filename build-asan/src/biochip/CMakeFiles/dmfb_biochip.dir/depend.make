# Empty dependencies file for dmfb_biochip.
# This may be replaced when dependencies are built.
