# Empty dependencies file for dmfb_hexgrid.
# This may be replaced when dependencies are built.
