
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hexgrid/hex_coord.cpp" "src/hexgrid/CMakeFiles/dmfb_hexgrid.dir/hex_coord.cpp.o" "gcc" "src/hexgrid/CMakeFiles/dmfb_hexgrid.dir/hex_coord.cpp.o.d"
  "/root/repo/src/hexgrid/region.cpp" "src/hexgrid/CMakeFiles/dmfb_hexgrid.dir/region.cpp.o" "gcc" "src/hexgrid/CMakeFiles/dmfb_hexgrid.dir/region.cpp.o.d"
  "/root/repo/src/hexgrid/square_coord.cpp" "src/hexgrid/CMakeFiles/dmfb_hexgrid.dir/square_coord.cpp.o" "gcc" "src/hexgrid/CMakeFiles/dmfb_hexgrid.dir/square_coord.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/dmfb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
