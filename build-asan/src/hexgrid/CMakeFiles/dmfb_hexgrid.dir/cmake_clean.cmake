file(REMOVE_RECURSE
  "CMakeFiles/dmfb_hexgrid.dir/hex_coord.cpp.o"
  "CMakeFiles/dmfb_hexgrid.dir/hex_coord.cpp.o.d"
  "CMakeFiles/dmfb_hexgrid.dir/region.cpp.o"
  "CMakeFiles/dmfb_hexgrid.dir/region.cpp.o.d"
  "CMakeFiles/dmfb_hexgrid.dir/square_coord.cpp.o"
  "CMakeFiles/dmfb_hexgrid.dir/square_coord.cpp.o.d"
  "libdmfb_hexgrid.a"
  "libdmfb_hexgrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmfb_hexgrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
