file(REMOVE_RECURSE
  "libdmfb_hexgrid.a"
)
