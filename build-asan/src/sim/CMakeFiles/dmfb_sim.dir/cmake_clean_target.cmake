file(REMOVE_RECURSE
  "libdmfb_sim.a"
)
