
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/assay_workload.cpp" "src/sim/CMakeFiles/dmfb_sim.dir/assay_workload.cpp.o" "gcc" "src/sim/CMakeFiles/dmfb_sim.dir/assay_workload.cpp.o.d"
  "/root/repo/src/sim/chip_design.cpp" "src/sim/CMakeFiles/dmfb_sim.dir/chip_design.cpp.o" "gcc" "src/sim/CMakeFiles/dmfb_sim.dir/chip_design.cpp.o.d"
  "/root/repo/src/sim/fault_model.cpp" "src/sim/CMakeFiles/dmfb_sim.dir/fault_model.cpp.o" "gcc" "src/sim/CMakeFiles/dmfb_sim.dir/fault_model.cpp.o.d"
  "/root/repo/src/sim/fault_state.cpp" "src/sim/CMakeFiles/dmfb_sim.dir/fault_state.cpp.o" "gcc" "src/sim/CMakeFiles/dmfb_sim.dir/fault_state.cpp.o.d"
  "/root/repo/src/sim/session.cpp" "src/sim/CMakeFiles/dmfb_sim.dir/session.cpp.o" "gcc" "src/sim/CMakeFiles/dmfb_sim.dir/session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/dmfb_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/hexgrid/CMakeFiles/dmfb_hexgrid.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/graph/CMakeFiles/dmfb_graph.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/biochip/CMakeFiles/dmfb_biochip.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/fault/CMakeFiles/dmfb_fault.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/reconfig/CMakeFiles/dmfb_reconfig.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/fluidics/CMakeFiles/dmfb_fluidics.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/assay/CMakeFiles/dmfb_assay.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
