# Empty dependencies file for dmfb_sim.
# This may be replaced when dependencies are built.
