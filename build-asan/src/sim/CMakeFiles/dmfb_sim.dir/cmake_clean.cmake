file(REMOVE_RECURSE
  "CMakeFiles/dmfb_sim.dir/assay_workload.cpp.o"
  "CMakeFiles/dmfb_sim.dir/assay_workload.cpp.o.d"
  "CMakeFiles/dmfb_sim.dir/chip_design.cpp.o"
  "CMakeFiles/dmfb_sim.dir/chip_design.cpp.o.d"
  "CMakeFiles/dmfb_sim.dir/fault_model.cpp.o"
  "CMakeFiles/dmfb_sim.dir/fault_model.cpp.o.d"
  "CMakeFiles/dmfb_sim.dir/fault_state.cpp.o"
  "CMakeFiles/dmfb_sim.dir/fault_state.cpp.o.d"
  "CMakeFiles/dmfb_sim.dir/session.cpp.o"
  "CMakeFiles/dmfb_sim.dir/session.cpp.o.d"
  "libdmfb_sim.a"
  "libdmfb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmfb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
