file(REMOVE_RECURSE
  "libdmfb_yield.a"
)
