# Empty dependencies file for dmfb_yield.
# This may be replaced when dependencies are built.
