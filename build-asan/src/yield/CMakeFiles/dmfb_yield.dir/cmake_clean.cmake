file(REMOVE_RECURSE
  "CMakeFiles/dmfb_yield.dir/analytic.cpp.o"
  "CMakeFiles/dmfb_yield.dir/analytic.cpp.o.d"
  "CMakeFiles/dmfb_yield.dir/bounds.cpp.o"
  "CMakeFiles/dmfb_yield.dir/bounds.cpp.o.d"
  "CMakeFiles/dmfb_yield.dir/compound.cpp.o"
  "CMakeFiles/dmfb_yield.dir/compound.cpp.o.d"
  "CMakeFiles/dmfb_yield.dir/monte_carlo.cpp.o"
  "CMakeFiles/dmfb_yield.dir/monte_carlo.cpp.o.d"
  "libdmfb_yield.a"
  "libdmfb_yield.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmfb_yield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
