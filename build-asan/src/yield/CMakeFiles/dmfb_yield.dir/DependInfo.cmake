
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/yield/analytic.cpp" "src/yield/CMakeFiles/dmfb_yield.dir/analytic.cpp.o" "gcc" "src/yield/CMakeFiles/dmfb_yield.dir/analytic.cpp.o.d"
  "/root/repo/src/yield/bounds.cpp" "src/yield/CMakeFiles/dmfb_yield.dir/bounds.cpp.o" "gcc" "src/yield/CMakeFiles/dmfb_yield.dir/bounds.cpp.o.d"
  "/root/repo/src/yield/compound.cpp" "src/yield/CMakeFiles/dmfb_yield.dir/compound.cpp.o" "gcc" "src/yield/CMakeFiles/dmfb_yield.dir/compound.cpp.o.d"
  "/root/repo/src/yield/monte_carlo.cpp" "src/yield/CMakeFiles/dmfb_yield.dir/monte_carlo.cpp.o" "gcc" "src/yield/CMakeFiles/dmfb_yield.dir/monte_carlo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/dmfb_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/biochip/CMakeFiles/dmfb_biochip.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/fault/CMakeFiles/dmfb_fault.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/graph/CMakeFiles/dmfb_graph.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/reconfig/CMakeFiles/dmfb_reconfig.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/dmfb_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/assay/CMakeFiles/dmfb_assay.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/fluidics/CMakeFiles/dmfb_fluidics.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/hexgrid/CMakeFiles/dmfb_hexgrid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
