file(REMOVE_RECURSE
  "libdmfb_common.a"
)
