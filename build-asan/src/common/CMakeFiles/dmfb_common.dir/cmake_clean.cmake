file(REMOVE_RECURSE
  "CMakeFiles/dmfb_common.dir/contracts.cpp.o"
  "CMakeFiles/dmfb_common.dir/contracts.cpp.o.d"
  "CMakeFiles/dmfb_common.dir/parallel.cpp.o"
  "CMakeFiles/dmfb_common.dir/parallel.cpp.o.d"
  "CMakeFiles/dmfb_common.dir/parse.cpp.o"
  "CMakeFiles/dmfb_common.dir/parse.cpp.o.d"
  "CMakeFiles/dmfb_common.dir/rng.cpp.o"
  "CMakeFiles/dmfb_common.dir/rng.cpp.o.d"
  "CMakeFiles/dmfb_common.dir/stats.cpp.o"
  "CMakeFiles/dmfb_common.dir/stats.cpp.o.d"
  "libdmfb_common.a"
  "libdmfb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmfb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
