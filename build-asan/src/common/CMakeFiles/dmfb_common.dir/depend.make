# Empty dependencies file for dmfb_common.
# This may be replaced when dependencies are built.
