file(REMOVE_RECURSE
  "CMakeFiles/dmfb_graph.dir/bipartite_graph.cpp.o"
  "CMakeFiles/dmfb_graph.dir/bipartite_graph.cpp.o.d"
  "CMakeFiles/dmfb_graph.dir/csr_matching.cpp.o"
  "CMakeFiles/dmfb_graph.dir/csr_matching.cpp.o.d"
  "CMakeFiles/dmfb_graph.dir/graph.cpp.o"
  "CMakeFiles/dmfb_graph.dir/graph.cpp.o.d"
  "CMakeFiles/dmfb_graph.dir/hopcroft_karp.cpp.o"
  "CMakeFiles/dmfb_graph.dir/hopcroft_karp.cpp.o.d"
  "CMakeFiles/dmfb_graph.dir/kuhn.cpp.o"
  "CMakeFiles/dmfb_graph.dir/kuhn.cpp.o.d"
  "CMakeFiles/dmfb_graph.dir/matching.cpp.o"
  "CMakeFiles/dmfb_graph.dir/matching.cpp.o.d"
  "CMakeFiles/dmfb_graph.dir/max_flow.cpp.o"
  "CMakeFiles/dmfb_graph.dir/max_flow.cpp.o.d"
  "CMakeFiles/dmfb_graph.dir/push_relabel.cpp.o"
  "CMakeFiles/dmfb_graph.dir/push_relabel.cpp.o.d"
  "libdmfb_graph.a"
  "libdmfb_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmfb_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
