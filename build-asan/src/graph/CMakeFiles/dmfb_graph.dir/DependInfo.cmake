
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/bipartite_graph.cpp" "src/graph/CMakeFiles/dmfb_graph.dir/bipartite_graph.cpp.o" "gcc" "src/graph/CMakeFiles/dmfb_graph.dir/bipartite_graph.cpp.o.d"
  "/root/repo/src/graph/csr_matching.cpp" "src/graph/CMakeFiles/dmfb_graph.dir/csr_matching.cpp.o" "gcc" "src/graph/CMakeFiles/dmfb_graph.dir/csr_matching.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/graph/CMakeFiles/dmfb_graph.dir/graph.cpp.o" "gcc" "src/graph/CMakeFiles/dmfb_graph.dir/graph.cpp.o.d"
  "/root/repo/src/graph/hopcroft_karp.cpp" "src/graph/CMakeFiles/dmfb_graph.dir/hopcroft_karp.cpp.o" "gcc" "src/graph/CMakeFiles/dmfb_graph.dir/hopcroft_karp.cpp.o.d"
  "/root/repo/src/graph/kuhn.cpp" "src/graph/CMakeFiles/dmfb_graph.dir/kuhn.cpp.o" "gcc" "src/graph/CMakeFiles/dmfb_graph.dir/kuhn.cpp.o.d"
  "/root/repo/src/graph/matching.cpp" "src/graph/CMakeFiles/dmfb_graph.dir/matching.cpp.o" "gcc" "src/graph/CMakeFiles/dmfb_graph.dir/matching.cpp.o.d"
  "/root/repo/src/graph/max_flow.cpp" "src/graph/CMakeFiles/dmfb_graph.dir/max_flow.cpp.o" "gcc" "src/graph/CMakeFiles/dmfb_graph.dir/max_flow.cpp.o.d"
  "/root/repo/src/graph/push_relabel.cpp" "src/graph/CMakeFiles/dmfb_graph.dir/push_relabel.cpp.o" "gcc" "src/graph/CMakeFiles/dmfb_graph.dir/push_relabel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/dmfb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
