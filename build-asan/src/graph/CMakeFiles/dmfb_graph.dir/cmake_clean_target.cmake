file(REMOVE_RECURSE
  "libdmfb_graph.a"
)
