# Empty dependencies file for dmfb_graph.
# This may be replaced when dependencies are built.
