file(REMOVE_RECURSE
  "CMakeFiles/dmfb_io.dir/ascii_render.cpp.o"
  "CMakeFiles/dmfb_io.dir/ascii_render.cpp.o.d"
  "CMakeFiles/dmfb_io.dir/svg_render.cpp.o"
  "CMakeFiles/dmfb_io.dir/svg_render.cpp.o.d"
  "CMakeFiles/dmfb_io.dir/table.cpp.o"
  "CMakeFiles/dmfb_io.dir/table.cpp.o.d"
  "libdmfb_io.a"
  "libdmfb_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmfb_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
