# Empty dependencies file for dmfb_io.
# This may be replaced when dependencies are built.
