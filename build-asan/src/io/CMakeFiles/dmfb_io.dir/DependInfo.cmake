
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/ascii_render.cpp" "src/io/CMakeFiles/dmfb_io.dir/ascii_render.cpp.o" "gcc" "src/io/CMakeFiles/dmfb_io.dir/ascii_render.cpp.o.d"
  "/root/repo/src/io/svg_render.cpp" "src/io/CMakeFiles/dmfb_io.dir/svg_render.cpp.o" "gcc" "src/io/CMakeFiles/dmfb_io.dir/svg_render.cpp.o.d"
  "/root/repo/src/io/table.cpp" "src/io/CMakeFiles/dmfb_io.dir/table.cpp.o" "gcc" "src/io/CMakeFiles/dmfb_io.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/dmfb_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/biochip/CMakeFiles/dmfb_biochip.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/reconfig/CMakeFiles/dmfb_reconfig.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/graph/CMakeFiles/dmfb_graph.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/hexgrid/CMakeFiles/dmfb_hexgrid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
