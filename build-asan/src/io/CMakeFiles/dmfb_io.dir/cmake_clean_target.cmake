file(REMOVE_RECURSE
  "libdmfb_io.a"
)
