# Empty dependencies file for dmfb_campaign.
# This may be replaced when dependencies are built.
