file(REMOVE_RECURSE
  "CMakeFiles/dmfb_campaign.dir/builtin.cpp.o"
  "CMakeFiles/dmfb_campaign.dir/builtin.cpp.o.d"
  "CMakeFiles/dmfb_campaign.dir/grid.cpp.o"
  "CMakeFiles/dmfb_campaign.dir/grid.cpp.o.d"
  "CMakeFiles/dmfb_campaign.dir/runner.cpp.o"
  "CMakeFiles/dmfb_campaign.dir/runner.cpp.o.d"
  "CMakeFiles/dmfb_campaign.dir/sink.cpp.o"
  "CMakeFiles/dmfb_campaign.dir/sink.cpp.o.d"
  "CMakeFiles/dmfb_campaign.dir/spec.cpp.o"
  "CMakeFiles/dmfb_campaign.dir/spec.cpp.o.d"
  "libdmfb_campaign.a"
  "libdmfb_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmfb_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
