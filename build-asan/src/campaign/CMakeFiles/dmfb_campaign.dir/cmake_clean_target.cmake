file(REMOVE_RECURSE
  "libdmfb_campaign.a"
)
