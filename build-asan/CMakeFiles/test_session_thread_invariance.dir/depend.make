# Empty dependencies file for test_session_thread_invariance.
# This may be replaced when dependencies are built.
