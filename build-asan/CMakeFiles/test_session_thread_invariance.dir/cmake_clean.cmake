file(REMOVE_RECURSE
  "CMakeFiles/test_session_thread_invariance.dir/tests/test_session_thread_invariance.cpp.o"
  "CMakeFiles/test_session_thread_invariance.dir/tests/test_session_thread_invariance.cpp.o.d"
  "test_session_thread_invariance"
  "test_session_thread_invariance.pdb"
  "test_session_thread_invariance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_session_thread_invariance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
