file(REMOVE_RECURSE
  "CMakeFiles/test_actuation.dir/tests/test_actuation.cpp.o"
  "CMakeFiles/test_actuation.dir/tests/test_actuation.cpp.o.d"
  "test_actuation"
  "test_actuation.pdb"
  "test_actuation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_actuation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
