# Empty dependencies file for test_actuation.
# This may be replaced when dependencies are built.
