file(REMOVE_RECURSE
  "CMakeFiles/test_fault_state_words.dir/tests/test_fault_state_words.cpp.o"
  "CMakeFiles/test_fault_state_words.dir/tests/test_fault_state_words.cpp.o.d"
  "test_fault_state_words"
  "test_fault_state_words.pdb"
  "test_fault_state_words[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fault_state_words.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
