# Empty compiler generated dependencies file for test_fault_state_words.
# This may be replaced when dependencies are built.
