# Empty dependencies file for test_testplan.
# This may be replaced when dependencies are built.
