file(REMOVE_RECURSE
  "CMakeFiles/test_testplan.dir/tests/test_testplan.cpp.o"
  "CMakeFiles/test_testplan.dir/tests/test_testplan.cpp.o.d"
  "test_testplan"
  "test_testplan.pdb"
  "test_testplan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_testplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
