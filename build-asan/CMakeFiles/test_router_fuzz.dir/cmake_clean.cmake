file(REMOVE_RECURSE
  "CMakeFiles/test_router_fuzz.dir/tests/test_router_fuzz.cpp.o"
  "CMakeFiles/test_router_fuzz.dir/tests/test_router_fuzz.cpp.o.d"
  "test_router_fuzz"
  "test_router_fuzz.pdb"
  "test_router_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_router_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
