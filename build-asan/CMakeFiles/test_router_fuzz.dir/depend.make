# Empty dependencies file for test_router_fuzz.
# This may be replaced when dependencies are built.
