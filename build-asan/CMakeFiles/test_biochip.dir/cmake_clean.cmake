file(REMOVE_RECURSE
  "CMakeFiles/test_biochip.dir/tests/test_biochip.cpp.o"
  "CMakeFiles/test_biochip.dir/tests/test_biochip.cpp.o.d"
  "test_biochip"
  "test_biochip.pdb"
  "test_biochip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_biochip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
