# Empty compiler generated dependencies file for test_biochip.
# This may be replaced when dependencies are built.
