# Empty compiler generated dependencies file for test_compound_yield.
# This may be replaced when dependencies are built.
