file(REMOVE_RECURSE
  "CMakeFiles/test_compound_yield.dir/tests/test_compound_yield.cpp.o"
  "CMakeFiles/test_compound_yield.dir/tests/test_compound_yield.cpp.o.d"
  "test_compound_yield"
  "test_compound_yield.pdb"
  "test_compound_yield[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compound_yield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
