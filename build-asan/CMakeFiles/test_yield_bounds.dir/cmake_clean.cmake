file(REMOVE_RECURSE
  "CMakeFiles/test_yield_bounds.dir/tests/test_yield_bounds.cpp.o"
  "CMakeFiles/test_yield_bounds.dir/tests/test_yield_bounds.cpp.o.d"
  "test_yield_bounds"
  "test_yield_bounds.pdb"
  "test_yield_bounds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_yield_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
