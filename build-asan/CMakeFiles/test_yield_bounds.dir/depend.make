# Empty dependencies file for test_yield_bounds.
# This may be replaced when dependencies are built.
