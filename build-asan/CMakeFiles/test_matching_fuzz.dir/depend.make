# Empty dependencies file for test_matching_fuzz.
# This may be replaced when dependencies are built.
