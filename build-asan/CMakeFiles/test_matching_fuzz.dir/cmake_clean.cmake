file(REMOVE_RECURSE
  "CMakeFiles/test_matching_fuzz.dir/tests/test_matching_fuzz.cpp.o"
  "CMakeFiles/test_matching_fuzz.dir/tests/test_matching_fuzz.cpp.o.d"
  "test_matching_fuzz"
  "test_matching_fuzz.pdb"
  "test_matching_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_matching_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
