# Empty compiler generated dependencies file for test_sim_session.
# This may be replaced when dependencies are built.
