file(REMOVE_RECURSE
  "CMakeFiles/test_sim_session.dir/tests/test_sim_session.cpp.o"
  "CMakeFiles/test_sim_session.dir/tests/test_sim_session.cpp.o.d"
  "test_sim_session"
  "test_sim_session.pdb"
  "test_sim_session[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
