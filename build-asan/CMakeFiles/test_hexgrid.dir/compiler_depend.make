# Empty compiler generated dependencies file for test_hexgrid.
# This may be replaced when dependencies are built.
