file(REMOVE_RECURSE
  "CMakeFiles/test_hexgrid.dir/tests/test_hexgrid.cpp.o"
  "CMakeFiles/test_hexgrid.dir/tests/test_hexgrid.cpp.o.d"
  "test_hexgrid"
  "test_hexgrid.pdb"
  "test_hexgrid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hexgrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
