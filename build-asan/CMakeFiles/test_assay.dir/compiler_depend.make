# Empty compiler generated dependencies file for test_assay.
# This may be replaced when dependencies are built.
