file(REMOVE_RECURSE
  "CMakeFiles/test_assay.dir/tests/test_assay.cpp.o"
  "CMakeFiles/test_assay.dir/tests/test_assay.cpp.o.d"
  "test_assay"
  "test_assay.pdb"
  "test_assay[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_assay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
