file(REMOVE_RECURSE
  "CMakeFiles/test_sim_operational.dir/tests/test_sim_operational.cpp.o"
  "CMakeFiles/test_sim_operational.dir/tests/test_sim_operational.cpp.o.d"
  "test_sim_operational"
  "test_sim_operational.pdb"
  "test_sim_operational[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_operational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
