# Empty compiler generated dependencies file for test_sim_operational.
# This may be replaced when dependencies are built.
