
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_sim_operational.cpp" "CMakeFiles/test_sim_operational.dir/tests/test_sim_operational.cpp.o" "gcc" "CMakeFiles/test_sim_operational.dir/tests/test_sim_operational.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/_deps/googletest-build/googletest/CMakeFiles/gtest_main.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/core/CMakeFiles/dmfb_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/campaign/CMakeFiles/dmfb_campaign.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/testplan/CMakeFiles/dmfb_testplan.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/io/CMakeFiles/dmfb_io.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/yield/CMakeFiles/dmfb_yield.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/dmfb_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/assay/CMakeFiles/dmfb_assay.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/fluidics/CMakeFiles/dmfb_fluidics.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/reconfig/CMakeFiles/dmfb_reconfig.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/fault/CMakeFiles/dmfb_fault.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/biochip/CMakeFiles/dmfb_biochip.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/graph/CMakeFiles/dmfb_graph.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/hexgrid/CMakeFiles/dmfb_hexgrid.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/dmfb_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/_deps/googletest-build/googletest/CMakeFiles/gtest.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
