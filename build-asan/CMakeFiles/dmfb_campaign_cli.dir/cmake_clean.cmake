file(REMOVE_RECURSE
  "CMakeFiles/dmfb_campaign_cli.dir/tools/dmfb_campaign.cpp.o"
  "CMakeFiles/dmfb_campaign_cli.dir/tools/dmfb_campaign.cpp.o.d"
  "dmfb_campaign"
  "dmfb_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmfb_campaign_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
