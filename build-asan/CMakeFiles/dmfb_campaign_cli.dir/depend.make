# Empty dependencies file for dmfb_campaign_cli.
# This may be replaced when dependencies are built.
