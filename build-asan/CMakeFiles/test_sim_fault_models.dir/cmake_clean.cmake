file(REMOVE_RECURSE
  "CMakeFiles/test_sim_fault_models.dir/tests/test_sim_fault_models.cpp.o"
  "CMakeFiles/test_sim_fault_models.dir/tests/test_sim_fault_models.cpp.o.d"
  "test_sim_fault_models"
  "test_sim_fault_models.pdb"
  "test_sim_fault_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_fault_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
