# Empty dependencies file for test_dtmb.
# This may be replaced when dependencies are built.
