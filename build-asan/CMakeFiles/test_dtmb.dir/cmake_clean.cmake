file(REMOVE_RECURSE
  "CMakeFiles/test_dtmb.dir/tests/test_dtmb.cpp.o"
  "CMakeFiles/test_dtmb.dir/tests/test_dtmb.cpp.o.d"
  "test_dtmb"
  "test_dtmb.pdb"
  "test_dtmb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dtmb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
