# Empty compiler generated dependencies file for test_concurrent.
# This may be replaced when dependencies are built.
