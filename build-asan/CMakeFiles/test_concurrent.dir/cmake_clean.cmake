file(REMOVE_RECURSE
  "CMakeFiles/test_concurrent.dir/tests/test_concurrent.cpp.o"
  "CMakeFiles/test_concurrent.dir/tests/test_concurrent.cpp.o.d"
  "test_concurrent"
  "test_concurrent.pdb"
  "test_concurrent[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
