# Empty dependencies file for test_campaign_fuzz.
# This may be replaced when dependencies are built.
