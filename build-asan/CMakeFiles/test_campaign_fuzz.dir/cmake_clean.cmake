file(REMOVE_RECURSE
  "CMakeFiles/test_campaign_fuzz.dir/tests/test_campaign_fuzz.cpp.o"
  "CMakeFiles/test_campaign_fuzz.dir/tests/test_campaign_fuzz.cpp.o.d"
  "test_campaign_fuzz"
  "test_campaign_fuzz.pdb"
  "test_campaign_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_campaign_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
