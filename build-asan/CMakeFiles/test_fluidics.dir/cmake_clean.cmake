file(REMOVE_RECURSE
  "CMakeFiles/test_fluidics.dir/tests/test_fluidics.cpp.o"
  "CMakeFiles/test_fluidics.dir/tests/test_fluidics.cpp.o.d"
  "test_fluidics"
  "test_fluidics.pdb"
  "test_fluidics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fluidics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
