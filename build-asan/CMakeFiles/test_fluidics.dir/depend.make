# Empty dependencies file for test_fluidics.
# This may be replaced when dependencies are built.
