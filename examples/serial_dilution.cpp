// Serial dilution — a droplet-split workload beyond the paper's assays.
//
// A concentrated sample droplet is repeatedly merged 1:1 with buffer and
// split, producing a geometric dilution ladder (c, c/2, c/4, ...). This is
// a standard DMFB exercise for calibration curves and exercises the
// simulator's split/merge chemistry on a defect-tolerant array.
//
// Build & run:  ./build/examples/serial_dilution
#include <iomanip>
#include <iostream>

#include "biochip/dtmb.hpp"
#include "fluidics/router.hpp"
#include "fluidics/simulator.hpp"

int main() {
  using namespace dmfb;
  using fluidics::Mixture;

  const biochip::HexArray array(
      hex::Region::parallelogram(13, 9),
      [](hex::HexCoord) { return biochip::CellRole::kPrimary; });
  fluidics::UsableCells usable(array);
  fluidics::DropletSimulator sim(usable);

  const double c0 = 16.0;  // mM glucose in the stock droplet
  const double volume = 1.0;

  std::cout << std::fixed << std::setprecision(3);
  std::cout << "Serial 1:1 dilution ladder from " << c0 << " mM stock:\n\n";

  // The current working droplet starts as stock at the west edge.
  auto working = sim.dispense(array.region().index_of({1, 4}), volume,
                              Mixture::from_concentration("glucose", c0,
                                                          volume));
  std::cout << "stage 0: "
            << sim.droplet(working).mixture.concentration_mm(
                   "glucose", sim.droplet(working).volume_nl)
            << " mM (stock)\n";

  for (int stage = 1; stage <= 4; ++stage) {
    // Dispense a buffer droplet two cells east of the working droplet.
    const auto here = array.region().coord_at(sim.droplet(working).cell);
    const hex::HexCoord buffer_at{here.q + 2, here.r};
    const auto buffer = sim.dispense(array.region().index_of(buffer_at),
                                     volume, Mixture{});
    // Merge buffer into the working droplet (1:1).
    sim.allow_merge(working, buffer);
    sim.step({{buffer, array.region().index_of({here.q + 1, here.r})}});
    sim.step({{buffer, sim.droplet(working).cell}});

    // Split the doubled droplet; keep the east half as the next stage and
    // retire the west half (it would feed the calibration detector).
    const auto [east, west] = sim.split(working, hex::Direction::kEast);
    sim.remove(west);
    working = east;

    const auto& droplet = sim.droplet(working);
    const double concentration =
        droplet.mixture.concentration_mm("glucose", droplet.volume_nl);
    std::cout << "stage " << stage << ": " << concentration
              << " mM (expected " << c0 / (1 << stage) << ")\n";
  }
  std::cout << "\nCompleted in " << sim.now()
            << " actuation cycles; every merge/split obeyed the fluidic "
               "constraints.\n";
  return 0;
}
