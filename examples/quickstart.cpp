// Quickstart: the paper's flow in ~40 lines.
//
//   1. Build a defect-tolerant DTMB(2,6) biochip.
//   2. Manufacture it imperfectly (every cell survives with p = 0.97).
//   3. Test it with stimulus droplets to locate the faults.
//   4. Repair it by local reconfiguration (bipartite matching of faulty
//      cells to adjacent spares).
//   5. Estimate the design's manufacturing yield by Monte-Carlo.
//   6. Ask the same question through the session API with adaptive runs.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/defect_tolerant_biochip.hpp"
#include "io/ascii_render.hpp"
#include "sim/session.hpp"

int main() {
  using namespace dmfb;

  // 1. A 12x12 hexagonal-electrode array with interstitial spares: every
  //    primary cell touches two spares, every spare six primaries.
  core::DefectTolerantBiochip chip(biochip::DtmbKind::kDtmb2_6, 12, 12);
  std::cout << "Built " << biochip::dtmb_info(*chip.kind()).name << ": "
            << chip.array().primary_count() << " primaries + "
            << chip.array().spare_count() << " spares (RR = "
            << chip.redundancy_ratio() << ")\n\n";

  // 2. Imperfect manufacturing.
  Rng rng(2025);
  const auto faults = chip.inject_bernoulli(0.97, rng);
  std::cout << "Manufacturing left " << faults.size() << " faulty cells.\n";

  // 3. Stimulus-droplet testing finds them.
  const auto session = chip.test_chip();
  std::cout << "Testing localised " << session.faults_found.size()
            << " faults in " << session.walks_used << " droplet walks.\n";

  // 4. Local reconfiguration repairs the chip (or proves it scrap).
  const auto plan = chip.reconfigure();
  std::cout << "Reconfiguration " << (plan.success ? "SUCCEEDED" : "FAILED")
            << "; replacements:\n";
  for (const auto& replacement : plan.replacements) {
    std::cout << "  faulty " << chip.array().region().coord_at(replacement.faulty)
              << " -> spare "
              << chip.array().region().coord_at(replacement.spare) << '\n';
  }
  std::cout << '\n' << io::render_hex(chip.array(), &plan, {.legend = true});

  // 5. What fraction of manufactured chips is repairable at this p?
  yield::McOptions options;
  options.runs = 10000;
  const auto estimate = chip.estimate_yield(0.97, options);
  std::cout << "\nMonte-Carlo yield at p = 0.97: " << estimate.value
            << "  (95% CI [" << estimate.ci95.lo << ", " << estimate.ci95.hi
            << "])\n";

  // 6. The session API (docs/API.md) is the preferred interface: queries
  //    against an immutable design snapshot, cached results, and adaptive
  //    stopping that runs only as many deterministic chunks as the target
  //    confidence interval needs.
  sim::YieldQuery query;
  query.fault = sim::FaultModel::bernoulli(0.97);
  query.runs = 50000;  // cap; adaptive stopping usually quits much earlier
  query.target_ci_half_width = 0.01;
  const auto adaptive = chip.session().run(query);
  std::cout << "Adaptive session estimate: " << adaptive.value << " after "
            << adaptive.runs << " runs (CI half-width <= 0.01).\n";
  return 0;
}
