// Off-line testing with stimulus droplets (paper Section 4, refs [10,11]).
//
// A KCl stimulus droplet is steered along a covering walk over every cell.
// A cell with a catastrophic fault (dielectric breakdown, electrode short,
// open connection) cannot actuate the droplet, so the droplet stalls; the
// controller records the culprit, replans around all known-bad cells and
// continues until the walk completes. The resulting fault map feeds local
// reconfiguration.
//
// Build & run:  ./build/examples/test_planning
#include <iostream>

#include "biochip/dtmb.hpp"
#include "common/rng.hpp"
#include "fault/injector.hpp"
#include "io/ascii_render.hpp"
#include "reconfig/local_reconfig.hpp"
#include "testplan/stimulus_test.hpp"

int main() {
  using namespace dmfb;

  auto array = biochip::make_dtmb_array(biochip::DtmbKind::kDtmb2_6, 10, 8);
  Rng rng(0x7E57);
  const auto injected = fault::FixedCountInjector(4).inject(array, rng);

  std::cout << "Hidden manufacturing defects (unknown to the tester):\n";
  for (const auto& record : injected.records) {
    std::cout << "  " << array.region().coord_at(record.cell) << "  "
              << to_string(*record.catastrophic) << '\n';
  }

  const auto walk = testplan::plan_covering_walk(array, 0);
  const auto short_walk = testplan::plan_short_covering_walk(array, 0);
  std::cout << "\nInitial test plan: DFS covering walk = " << walk.size()
            << " droplet moves; optimized nearest-first walk = "
            << short_walk.size() << " moves over " << array.cell_count()
            << " cells (test time ~ walk length).\n";

  const auto session = testplan::run_test_session(array, 0);
  std::cout << "Adaptive test session used " << session.walks_used
            << " stimulus droplets and localised "
            << session.faults_found.size() << " faults:\n";
  for (const auto cell : session.faults_found) {
    std::cout << "  " << array.region().coord_at(cell) << '\n';
  }
  if (!session.untestable.empty()) {
    std::cout << session.untestable.size()
              << " cells were unreachable (cut off by faults) and remain "
                 "untested.\n";
  }

  // Feed the tested fault map into reconfiguration.
  const auto plan = reconfig::LocalReconfigurer().plan(array);
  std::cout << "\nLocal reconfiguration of the tested chip: "
            << (plan.success ? "SUCCESS" : "FAILURE") << '\n'
            << io::render_hex(array, &plan, {.legend = true});
  return plan.success ? 0 : 1;
}
