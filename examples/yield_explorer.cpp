// Yield explorer: the design-space tool a biochip architect would use.
//
// Given a required number of working (primary) cells and an expected
// per-cell survival probability p, it evaluates every DTMB redundancy
// level — raw yield, effective yield (yield per unit area), area overhead —
// and recommends (a) the yield-optimal design, (b) the effective-yield
// optimal design, and (c) the cheapest design meeting a target yield.
//
// Usage:  yield_explorer [primaries] [p] [target_yield]
// e.g.:   ./build/examples/yield_explorer 108 0.99 0.90
#include <iostream>

#include "common/parse.hpp"
#include "core/design_advisor.hpp"
#include "io/table.hpp"

int main(int argc, char** argv) {
  using namespace dmfb;

  // Strict parsing (common::parse_*): garbage like "abc" or "0.9x" is
  // rejected instead of silently truncating the way atoi/atof would.
  const auto primaries_arg =
      argc > 1 ? common::parse_int_in(argv[1], 1, 1'000'000)
               : std::optional<std::int64_t>(108);
  const auto p_arg = argc > 2 ? common::parse_double_in(argv[2], 0.0, 1.0)
                              : std::optional<double>(0.99);
  const auto target_arg = argc > 3
                              ? common::parse_double_in(argv[3], 0.0, 1.0)
                              : std::optional<double>(0.90);
  if (!primaries_arg || !p_arg || !target_arg) {
    std::cerr << "usage: yield_explorer [primaries>0] [p in 0..1] "
                 "[target in 0..1]\n";
    return 2;
  }
  const auto primaries = static_cast<std::int32_t>(*primaries_arg);
  const double p = *p_arg;
  const double target = *target_arg;

  yield::McOptions options;
  options.runs = 10000;
  const core::DesignAdvisor advisor(primaries, options);
  const auto advice = advisor.assess(p);

  io::Table table({"design", "RR", "primaries", "total cells", "yield",
                   "effective yield"});
  for (const auto& assessment : advice.assessments) {
    table.row(4)
        .cell(assessment.name)
        .cell(assessment.redundancy_ratio)
        .cell(assessment.primaries)
        .cell(assessment.total_cells)
        .cell(assessment.yield)
        .cell(assessment.effective_yield);
  }
  table.print(std::cout, "Design space at p = " + io::format_double(p, 3) +
                             " for >= " + std::to_string(primaries) +
                             " working cells");

  std::cout << "Best raw yield      : " << advice.best_yield().name << " ("
            << io::format_double(advice.best_yield().yield, 4) << ")\n";
  std::cout << "Best effective yield: " << advice.best_effective_yield().name
            << " ("
            << io::format_double(advice.best_effective_yield().effective_yield,
                                 4)
            << ")\n";
  if (const auto* pick = advice.cheapest_meeting(target)) {
    std::cout << "Cheapest design with yield >= " << target << ": "
              << pick->name << " (RR = "
              << io::format_double(pick->redundancy_ratio, 4) << ", yield "
              << io::format_double(pick->yield, 4) << ")\n";
  } else {
    std::cout << "No design reaches yield >= " << target
              << " at p = " << p << "; improve the process or shrink the "
              << "array.\n";
  }
  return 0;
}
