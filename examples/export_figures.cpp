// Exports publication-quality SVG figures of the paper's layouts into the
// working directory: the five DTMB designs (Figs 3-6) and the multiplexed
// diagnostics chip before/after a 10-fault local reconfiguration (Fig. 12).
//
// Build & run:  ./build/examples/export_figures [output_dir]
#include <filesystem>
#include <fstream>
#include <iostream>

#include "assay/multiplexed_chip.hpp"
#include "biochip/dtmb.hpp"
#include "common/rng.hpp"
#include "fault/injector.hpp"
#include "io/svg_render.hpp"
#include "reconfig/local_reconfig.hpp"

int main(int argc, char** argv) {
  using namespace dmfb;

  const std::filesystem::path out_dir = argc > 1 ? argv[1] : "figures";
  std::filesystem::create_directories(out_dir);
  const auto save = [&](const std::string& name, const std::string& svg) {
    const auto path = out_dir / name;
    std::ofstream file(path);
    file << svg;
    std::cout << "wrote " << path.string() << " (" << svg.size()
              << " bytes)\n";
  };

  // Figures 3-6: the five DTMB layouts.
  for (const biochip::DtmbKind kind : biochip::kAllDtmbKinds) {
    const auto array = biochip::make_dtmb_array(kind, 14, 10);
    std::string name(biochip::dtmb_info(kind).name);
    for (char& c : name) {
      if (c == '(' || c == ')' || c == ',') c = '_';
    }
    save("design_" + name + ".svg", io::render_svg(array));
  }

  // Figure 12: the diagnostics chip, pristine and reconfigured.
  auto chip = assay::make_multiplexed_chip();
  save("fig11_multiplexed_chip.svg", io::render_svg(chip.array));

  Rng rng(0xF12B);
  fault::FixedCountInjector(10).inject(chip.array, rng);
  const auto plan =
      reconfig::LocalReconfigurer(
          reconfig::CoveragePolicy::kUsedFaultyPrimaries)
          .plan(chip.array);
  std::cout << "10 faults injected; reconfiguration "
            << (plan.success ? "succeeded" : "failed") << '\n';
  save("fig12_reconfigured_chip.svg", io::render_svg(chip.array, &plan));
  return 0;
}
