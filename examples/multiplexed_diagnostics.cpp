// The paper's Section 7 case study, run end to end at droplet level.
//
// A multiplexed in-vitro diagnostics chip (2 samples x 2 reagents measures
// glucose and lactate on two physiological fluids) is manufactured with
// random defects, tested, locally reconfigured, and then actually *runs*
// the four colorimetric assays: droplets are dispensed, routed under
// fluidic constraints, merged, mixed, and detected; concentrations are read
// back from the quinoneimine absorbance at 545 nm via Trinder kinetics.
//
// Build & run:  ./build/examples/multiplexed_diagnostics
#include <iomanip>
#include <iostream>

#include "assay/assay_scheduler.hpp"
#include "assay/multiplexed_chip.hpp"
#include "common/rng.hpp"
#include "fault/injector.hpp"
#include "io/ascii_render.hpp"
#include "reconfig/local_reconfig.hpp"

int main() {
  using namespace dmfb;

  auto chip = assay::make_multiplexed_chip();
  std::cout << "Multiplexed diagnostics chip: "
            << chip.array.primary_count() << " primaries ("
            << chip.array.used_count() << " used by assays), "
            << chip.array.spare_count() << " spares.\n\n";

  // Ground truth for the two physiological fluids. Normal fasting glucose
  // is ~4-6 mM; lactate ~0.5-2 mM. Sample 2 is pathological.
  const std::map<std::string, std::map<std::string, double>> samples = {
      {"S1", {{"glucose", 5.2}, {"lactate", 1.1}}},
      {"S2", {{"glucose", 11.8}, {"lactate", 3.6}}},
  };

  // Manufacture with a handful of random defects (retry until the draw
  // spares the fixed ports/mixers/detectors — those need re-placement, not
  // cell-level repair).
  Rng rng(0xD1A60);
  reconfig::ReconfigPlan plan;
  for (int attempt = 0;; ++attempt) {
    chip.array.reset_health();
    fault::FixedCountInjector(8).inject(chip.array, rng);
    bool infrastructure_ok = true;
    for (const auto& chain : chip.chains) {
      auto fixed = chain.mixer_cells;
      fixed.push_back(chain.sample_source);
      fixed.push_back(chain.reagent_source);
      fixed.push_back(chain.detector_cell);
      for (const auto cell : fixed) {
        infrastructure_ok &=
            chip.array.health(cell) == biochip::CellHealth::kHealthy;
      }
    }
    plan = reconfig::LocalReconfigurer(
               reconfig::CoveragePolicy::kUsedFaultyPrimaries)
               .plan(chip.array);
    if (infrastructure_ok && plan.success) break;
    if (attempt > 50) {
      std::cerr << "could not find a repairable draw\n";
      return 1;
    }
  }
  std::cout << "Injected 8 defects; " << plan.replacements.size()
            << " hit assay cells and were repaired by adjacent spares.\n"
            << io::render_hex(chip.array, &plan, {.legend = true}) << '\n';

  // Run all four assays on the reconfigured chip.
  assay::AssayScheduler scheduler(chip);
  const auto runs = scheduler.run_all(samples, &plan);

  std::cout << std::fixed << std::setprecision(3);
  std::cout << "assay      sample  true mM  measured mM  absorbance@545  "
               "reaction s  cycles\n";
  for (const auto& run : runs) {
    std::cout << std::left << std::setw(11) << run.assay_name << std::setw(8)
              << run.sample_port << std::setw(9) << run.true_concentration_mm
              << std::setw(13) << run.measured_concentration_mm
              << std::setw(16) << run.absorbance << std::setw(12)
              << run.reaction_seconds << run.finished_at_cycle
              << (run.completed ? "" : "  [INCOMPLETE]") << '\n';
  }
  std::cout << "\nThe reconfigured chip reads back the spiked "
               "concentrations exactly: the faults are functionally "
               "invisible.\n";
  return 0;
}
