// Droplet routing on a faulty, reconfigured array — microfluidic locality
// made visible.
//
// Two droplets cross a DTMB(2,6) array that has faulty cells. The router
// must (a) detour around faults, (b) keep the droplets from ever coming
// within one cell of each other (static + dynamic fluidic constraints),
// and (c) exploit a reconfiguration-activated spare cell as part of the
// transport surface. Every step is replayed on the cycle-accurate
// simulator, which re-checks all constraints.
//
// Build & run:  ./build/examples/droplet_routing
#include <iostream>

#include "biochip/dtmb.hpp"
#include "fluidics/router.hpp"
#include "fluidics/simulator.hpp"
#include "io/ascii_render.hpp"
#include "reconfig/local_reconfig.hpp"

int main() {
  using namespace dmfb;

  auto array = biochip::make_dtmb_array(biochip::DtmbKind::kDtmb2_6, 11, 9);

  // A diagonal scar of faults across the middle of the array.
  for (const hex::HexCoord at :
       {hex::HexCoord{5, 2}, {5, 3}, {5, 4}, {4, 5}, {3, 6}}) {
    array.set_health(array.region().index_of(at),
                     biochip::CellHealth::kFaulty);
  }
  const auto plan = reconfig::LocalReconfigurer().plan(array);
  std::cout << "Reconfiguration " << (plan.success ? "succeeded" : "failed")
            << " (" << plan.replacements.size() << " spares activated)\n"
            << io::render_hex(array, &plan, {.legend = true}) << '\n';

  fluidics::UsableCells usable(array);
  usable.activate_plan(plan);
  fluidics::DropletSimulator sim(usable);

  const auto a_from = array.region().index_of({1, 1});
  const auto a_to = array.region().index_of({9, 7});
  const auto b_from = array.region().index_of({9, 1});
  const auto b_to = array.region().index_of({1, 7});
  const auto a = sim.dispense(a_from, 1.5, fluidics::Mixture::of("sample", 1));
  const auto b = sim.dispense(b_from, 1.5, fluidics::Mixture::of("buffer", 1));

  const fluidics::MultiDropletRouter router(usable);
  const auto routes = router.route({{a, a_from, a_to, {}},
                                    {b, b_from, b_to, {}}});
  if (!routes) {
    std::cerr << "routing failed\n";
    return 1;
  }
  std::cout << "Routed two crossing droplets; arrivals at t = "
            << (*routes)[0].arrival_time() << " and "
            << (*routes)[1].arrival_time() << " cycles.\n";

  for (const auto& route : *routes) {
    std::cout << "droplet " << route.droplet << ": ";
    for (const auto cell : route.cells) {
      std::cout << array.region().coord_at(cell) << ' ';
    }
    std::cout << '\n';
  }

  // Replay on the simulator: every fluidic constraint re-checked per cycle.
  sim.run_routes(*routes);
  std::cout << "\nSimulator replay clean: droplet " << a << " at "
            << array.region().coord_at(sim.droplet(a).cell) << ", droplet "
            << b << " at " << array.region().coord_at(sim.droplet(b).cell)
            << " after " << sim.now() << " cycles.\n";

  // Show the paper's key operational payoff: the droplets never used a
  // faulty cell, and any activated spare they used is listed here.
  for (const auto& route : *routes) {
    for (const auto cell : route.cells) {
      if (array.role(cell) == biochip::CellRole::kSpare) {
        std::cout << "droplet " << route.droplet
                  << " travelled over activated spare "
                  << array.region().coord_at(cell) << '\n';
      }
    }
  }
  return 0;
}
