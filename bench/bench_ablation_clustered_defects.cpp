// Ablation: the paper assumes independent (spot) defects. This bench keeps
// the *expected* number of failed cells fixed and compares yield under iid
// Bernoulli faults versus spatially clustered defects — clustering is
// harsher for interstitial redundancy because one cluster can wipe out a
// primary together with all of its spares.
#include <iostream>

#include "biochip/dtmb.hpp"
#include "fault/injector.hpp"
#include "io/table.hpp"
#include "yield/monte_carlo.hpp"

int main() {
  using namespace dmfb;

  io::Table table({"design", "E[failures]/chip", "yield (iid)",
                   "yield (clustered r=1)", "yield (clustered r=2)"});
  for (const auto kind :
       {biochip::DtmbKind::kDtmb2_6, biochip::DtmbKind::kDtmb3_6,
        biochip::DtmbKind::kDtmb4_4}) {
    auto array = biochip::make_dtmb_array_with_primaries(kind, 150);
    const double cells = array.cell_count();
    for (const double expected_failures : {4.0, 8.0, 12.0}) {
      yield::McOptions options;
      options.runs = 10000;

      const double p = 1.0 - expected_failures / cells;
      const auto iid = yield::mc_yield_bernoulli(array, p, options);

      const auto clustered_yield = [&](std::int32_t radius) {
        const fault::ClusteredInjector prototype(1.0, radius, 0.9, 0.4);
        const double per_spot = prototype.expected_failures_per_spot();
        const fault::ClusteredInjector injector(
            expected_failures / per_spot, radius, 0.9, 0.4);
        return yield::mc_yield(
                   array,
                   [&injector](biochip::HexArray& a, Rng& rng) {
                     injector.inject(a, rng);
                   },
                   options)
            .value;
      };

      table.row(4)
          .cell(std::string(biochip::dtmb_info(kind).name))
          .cell(expected_failures)
          .cell(iid.value)
          .cell(clustered_yield(1))
          .cell(clustered_yield(2));
    }
  }
  table.print(std::cout,
              "Ablation - iid vs clustered defects (equal expected failure "
              "counts, 10000 runs)");
  std::cout << "Clustering violates the paper's independence assumption and "
               "lowers yield at equal defect density; wider clusters hurt "
               "more.\n";
  return 0;
}
