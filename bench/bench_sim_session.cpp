// Micro-benchmarks for the session-based Monte-Carlo engine (Google
// Benchmark harness, skipped at configure time when the library is absent).
//
// The before/after pair the CI regression gate watches:
//   BM_McYieldRun_Legacy   — one Monte-Carlo run on the legacy path: inject
//                            into a HexArray, LocalReconfigurer::feasible
//                            (fresh bipartite graph + hash map per run).
//   BM_McYieldRun_Session  — the same run on the sim path: inject into a
//                            FaultState bitmap, filter the pre-built
//                            ChipDesign skeleton, matched with reused
//                            buffers.
// Both kernels replay the identical (seed, run)-derived fault streams, so
// they do the same matching work and differ only in engine overhead.
//
// The sweep pair scales the comparison to a fig9-sized grid (the paper's
// design x size x p cross product) at reduced runs.
//
// Emit machine-readable results with tools/bench_mc_yield.sh, which wraps
//   bench_sim_session --benchmark_out=BENCH_mc_yield.json
// and is what CI diffs against bench/baselines/BENCH_mc_yield.json.
#include <benchmark/benchmark.h>

#include "biochip/dtmb.hpp"
#include "campaign/builtin.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "fault/injector.hpp"
#include "obs/metrics.hpp"
#include "reconfig/local_reconfig.hpp"
#include "sim/assay_workload.hpp"
#include "sim/session.hpp"
#include "yield/monte_carlo.hpp"

namespace {

using namespace dmfb;

constexpr double kSurvivalP = 0.92;
constexpr std::uint64_t kSeed = sim::kDefaultSeed;

biochip::HexArray bench_array() {
  // The fig9 mid-size point: DTMB(2,6) at >= 120 primaries.
  return biochip::make_dtmb_array_with_primaries(biochip::DtmbKind::kDtmb2_6,
                                                 120);
}

biochip::HexArray dtmb16_array() {
  // The paper's standard design: DTMB(1,6) at >= 120 primaries.
  return biochip::make_dtmb_array_with_primaries(biochip::DtmbKind::kDtmb1_6,
                                                 120);
}

biochip::HexArray dtmb16_large_array() {
  // DTMB(1,6) at 2x fig9's largest size — the scale-out point the sparse
  // v1-vs-v2 injection pair is quoted on: v1 injection cost grows with the
  // cell count, v2's with the fault count (~6 faults at p = 0.99 here), so
  // this is where the O(cells)-vs-O(faults) separation is measured.
  return biochip::make_dtmb_array_with_primaries(biochip::DtmbKind::kDtmb1_6,
                                                 480);
}

void BM_McYieldRun_Legacy(benchmark::State& state) {
  auto array = bench_array();
  const fault::BernoulliInjector injector(kSurvivalP);
  const reconfig::LocalReconfigurer reconfigurer;
  std::int32_t run = 0;
  for (auto _ : state) {
    Rng rng = sim::run_stream(kSeed, run++);
    injector.inject(array, rng);
    benchmark::DoNotOptimize(reconfigurer.feasible(array));
    array.reset_health();
  }
}
BENCHMARK(BM_McYieldRun_Legacy);

void BM_McYieldRun_Session(benchmark::State& state) {
  const auto design = sim::ChipDesign::make(bench_array());
  sim::FaultState fault_state(design);
  const sim::FaultModel model = sim::FaultModel::bernoulli(kSurvivalP);
  std::int32_t run = 0;
  for (auto _ : state) {
    Rng rng = sim::run_stream(kSeed, run++);
    sim::inject(model, fault_state, rng);
    benchmark::DoNotOptimize(fault_state.repairable(
        reconfig::CoveragePolicy::kAllFaultyPrimaries,
        graph::MatchingEngine::kHopcroftKarp,
        reconfig::ReplacementPool::kSparesOnly));
    fault_state.reset();
  }
}
BENCHMARK(BM_McYieldRun_Session);

// The session kernel with an obs::Registry installed — the observability
// overhead probe. Compare against BM_McYieldRun_Session: the gap is the
// full per-run metrics cost (the injection-counter flush plus the TLS
// epoch checks). The gated ratio kernels above run with observability
// disabled, so the existing two-sided gate also enforces that merely
// *linking* obs stays free.
void BM_McYieldRun_SessionMetrics(benchmark::State& state) {
  obs::Registry registry;
  registry.install();
  const auto design = sim::ChipDesign::make(bench_array());
  sim::FaultState fault_state(design);
  const sim::FaultModel model = sim::FaultModel::bernoulli(kSurvivalP);
  std::int32_t run = 0;
  for (auto _ : state) {
    Rng rng = sim::run_stream(kSeed, run++);
    sim::inject(model, fault_state, rng);
    benchmark::DoNotOptimize(fault_state.repairable(
        reconfig::CoveragePolicy::kAllFaultyPrimaries,
        graph::MatchingEngine::kHopcroftKarp,
        reconfig::ReplacementPool::kSparesOnly));
    fault_state.reset();
  }
  registry.uninstall();
}
BENCHMARK(BM_McYieldRun_SessionMetrics);

// Engine variants of the session kernel (not part of the CI ratio gate):
// the same fault stream checked by the push-relabel batch engine, by the
// diff-based incremental repair path, and at the low-density operating
// point where the incremental diff actually pays (p = 0.99 leaves ~2 faults
// per run, so consecutive runs differ in a handful of cells).

void BM_McYieldRun_PushRelabel(benchmark::State& state) {
  const auto design = sim::ChipDesign::make(bench_array());
  sim::FaultState fault_state(design);
  const sim::FaultModel model = sim::FaultModel::bernoulli(kSurvivalP);
  std::int32_t run = 0;
  for (auto _ : state) {
    Rng rng = sim::run_stream(kSeed, run++);
    sim::inject(model, fault_state, rng);
    benchmark::DoNotOptimize(fault_state.repairable(
        reconfig::CoveragePolicy::kAllFaultyPrimaries,
        graph::MatchingEngine::kPushRelabel,
        reconfig::ReplacementPool::kSparesOnly));
    fault_state.reset();
  }
}
BENCHMARK(BM_McYieldRun_PushRelabel);

void BM_McYieldRun_Incremental(benchmark::State& state) {
  const auto design = sim::ChipDesign::make(bench_array());
  sim::FaultState fault_state(design);
  const sim::FaultModel model = sim::FaultModel::bernoulli(kSurvivalP);
  std::int32_t run = 0;
  for (auto _ : state) {
    Rng rng = sim::run_stream(kSeed, run++);
    sim::inject(model, fault_state, rng);
    benchmark::DoNotOptimize(fault_state.repairable_incremental(
        reconfig::CoveragePolicy::kAllFaultyPrimaries,
        reconfig::ReplacementPool::kSparesOnly));
    fault_state.reset();
  }
}
BENCHMARK(BM_McYieldRun_Incremental);

void BM_McYieldRun_IncrementalSparse(benchmark::State& state) {
  const auto design = sim::ChipDesign::make(bench_array());
  sim::FaultState fault_state(design);
  const sim::FaultModel model = sim::FaultModel::bernoulli(0.99);
  std::int32_t run = 0;
  for (auto _ : state) {
    Rng rng = sim::run_stream(kSeed, run++);
    sim::inject(model, fault_state, rng);
    benchmark::DoNotOptimize(fault_state.repairable_incremental(
        reconfig::CoveragePolicy::kAllFaultyPrimaries,
        reconfig::ReplacementPool::kSparesOnly));
    fault_state.reset();
  }
}
BENCHMARK(BM_McYieldRun_IncrementalSparse);

// The standard DTMB(1,6) query (the paper's principal design) under the
// auto-planned path, against its legacy counterpart: the pair the ROADMAP
// item-2 kernel target is quoted on.

void BM_McYieldRun_Dtmb16_Legacy(benchmark::State& state) {
  auto array = dtmb16_array();
  const fault::BernoulliInjector injector(kSurvivalP);
  const reconfig::LocalReconfigurer reconfigurer;
  std::int32_t run = 0;
  for (auto _ : state) {
    Rng rng = sim::run_stream(kSeed, run++);
    injector.inject(array, rng);
    benchmark::DoNotOptimize(reconfigurer.feasible(array));
    array.reset_health();
  }
}
BENCHMARK(BM_McYieldRun_Dtmb16_Legacy);

void BM_McYieldRun_Dtmb16_Auto(benchmark::State& state) {
  const auto design = sim::ChipDesign::make(dtmb16_array());
  sim::FaultState fault_state(design);
  const sim::FaultModel model = sim::FaultModel::bernoulli(kSurvivalP);
  sim::YieldQuery query;
  query.fault = model;
  query.engine = graph::MatchingEngine::kAuto;
  const sim::EnginePlan plan = sim::plan_engine(query, *design);
  std::int32_t run = 0;
  for (auto _ : state) {
    Rng rng = sim::run_stream(kSeed, run++);
    sim::inject(model, fault_state, rng);
    const bool ok =
        plan.incremental
            ? fault_state.repairable_incremental(
                  reconfig::CoveragePolicy::kAllFaultyPrimaries,
                  reconfig::ReplacementPool::kSparesOnly)
            : fault_state.repairable(
                  reconfig::CoveragePolicy::kAllFaultyPrimaries, plan.engine,
                  reconfig::ReplacementPool::kSparesOnly);
    benchmark::DoNotOptimize(ok);
    fault_state.reset();
  }
}
BENCHMARK(BM_McYieldRun_Dtmb16_Auto);

// v2 draw-contract kernels (rng_version = v2): the same work as their v1
// counterparts, but injection draws come from counter-based per-cell
// streams with geometric skip-sampling — O(faults) draws instead of
// O(cells). check_bench_regression.py maps each BM_McYieldRun_InjectV2*
// kernel to its v1 counterpart (V2_COUNTERPARTS) so the ratio table reads
// "v2 vs v1" instead of "n/a". The sparse DTMB(1,6) pair below is where
// the contract must pay: at p = 0.99 the v1 kernel burns ~99% of its
// injection draws on cells that never fault.

void BM_McYieldRun_Dtmb16Sparse(benchmark::State& state) {
  // v1 baseline for the sparse pair: DTMB(1,6), p = 0.99, incremental
  // repair (the plan the session would pick for this query).
  const auto design = sim::ChipDesign::make(dtmb16_large_array());
  sim::FaultState fault_state(design);
  const sim::FaultModel model = sim::FaultModel::bernoulli(0.99);
  std::int32_t run = 0;
  for (auto _ : state) {
    Rng rng = sim::run_stream(kSeed, run++);
    sim::inject(model, fault_state, rng);
    benchmark::DoNotOptimize(fault_state.repairable_incremental(
        reconfig::CoveragePolicy::kAllFaultyPrimaries,
        reconfig::ReplacementPool::kSparesOnly));
    fault_state.reset();
  }
}
BENCHMARK(BM_McYieldRun_Dtmb16Sparse);

void BM_McYieldRun_InjectV2(benchmark::State& state) {
  const auto design = sim::ChipDesign::make(bench_array());
  sim::FaultState fault_state(design);
  const sim::FaultModel model = sim::FaultModel::bernoulli(kSurvivalP);
  std::int32_t run = 0;
  for (auto _ : state) {
    CounterStream stream = sim::run_stream_v2(kSeed, run++);
    sim::inject_v2(model, fault_state, stream);
    benchmark::DoNotOptimize(fault_state.repairable(
        reconfig::CoveragePolicy::kAllFaultyPrimaries,
        graph::MatchingEngine::kHopcroftKarp,
        reconfig::ReplacementPool::kSparesOnly));
    fault_state.reset();
  }
}
BENCHMARK(BM_McYieldRun_InjectV2);

void BM_McYieldRun_InjectV2_Dtmb16Sparse(benchmark::State& state) {
  const auto design = sim::ChipDesign::make(dtmb16_large_array());
  sim::FaultState fault_state(design);
  const sim::FaultModel model = sim::FaultModel::bernoulli(0.99);
  std::int32_t run = 0;
  for (auto _ : state) {
    CounterStream stream = sim::run_stream_v2(kSeed, run++);
    sim::inject_v2(model, fault_state, stream);
    benchmark::DoNotOptimize(fault_state.repairable_incremental(
        reconfig::CoveragePolicy::kAllFaultyPrimaries,
        reconfig::ReplacementPool::kSparesOnly));
    fault_state.reset();
  }
}
BENCHMARK(BM_McYieldRun_InjectV2_Dtmb16Sparse);

void BM_McYieldRun_InjectV2_Parametric(benchmark::State& state) {
  const auto design = sim::ChipDesign::make(bench_array());
  sim::FaultState fault_state(design);
  const sim::FaultModel model = sim::FaultModel::parametric(1.2);
  std::int32_t run = 0;
  for (auto _ : state) {
    CounterStream stream = sim::run_stream_v2(kSeed, run++);
    sim::inject_v2(model, fault_state, stream);
    benchmark::DoNotOptimize(fault_state.repairable(
        reconfig::CoveragePolicy::kAllFaultyPrimaries,
        graph::MatchingEngine::kHopcroftKarp,
        reconfig::ReplacementPool::kSparesOnly));
    fault_state.reset();
  }
}
BENCHMARK(BM_McYieldRun_InjectV2_Parametric);

void BM_McYieldRun_InjectV2_Mixture(benchmark::State& state) {
  const auto design = sim::ChipDesign::make(bench_array());
  sim::FaultState fault_state(design);
  const sim::FaultModel model = sim::FaultModel::mixture(
      {sim::FaultModel::bernoulli(kSurvivalP),
       sim::FaultModel::parametric(1.2),
       sim::FaultModel::clustered(0.5, {1, 0.9, 0.3})});
  std::int32_t run = 0;
  for (auto _ : state) {
    CounterStream stream = sim::run_stream_v2(kSeed, run++);
    sim::inject_v2(model, fault_state, stream);
    benchmark::DoNotOptimize(fault_state.repairable(
        reconfig::CoveragePolicy::kAllFaultyPrimaries,
        graph::MatchingEngine::kHopcroftKarp,
        reconfig::ReplacementPool::kSparesOnly));
    fault_state.reset();
  }
}
BENCHMARK(BM_McYieldRun_InjectV2_Mixture);

// Composable-model kernels (not part of the CI ratio gate): the parametric
// injector's per-cell Gaussian sampling dominates its run cost, and the
// mixture kernel stacks all three mechanism families per run.

void BM_McYieldRun_Parametric(benchmark::State& state) {
  const auto design = sim::ChipDesign::make(bench_array());
  sim::FaultState fault_state(design);
  const sim::FaultModel model = sim::FaultModel::parametric(1.2);
  std::int32_t run = 0;
  for (auto _ : state) {
    Rng rng = sim::run_stream(kSeed, run++);
    sim::inject(model, fault_state, rng);
    benchmark::DoNotOptimize(fault_state.repairable(
        reconfig::CoveragePolicy::kAllFaultyPrimaries,
        graph::MatchingEngine::kHopcroftKarp,
        reconfig::ReplacementPool::kSparesOnly));
    fault_state.reset();
  }
}
BENCHMARK(BM_McYieldRun_Parametric);

void BM_McYieldRun_Mixture(benchmark::State& state) {
  const auto design = sim::ChipDesign::make(bench_array());
  sim::FaultState fault_state(design);
  const sim::FaultModel model = sim::FaultModel::mixture(
      {sim::FaultModel::bernoulli(kSurvivalP),
       sim::FaultModel::parametric(1.2),
       sim::FaultModel::clustered(0.5, {1, 0.9, 0.3})});
  std::int32_t run = 0;
  for (auto _ : state) {
    Rng rng = sim::run_stream(kSeed, run++);
    sim::inject(model, fault_state, rng);
    benchmark::DoNotOptimize(fault_state.repairable(
        reconfig::CoveragePolicy::kAllFaultyPrimaries,
        graph::MatchingEngine::kHopcroftKarp,
        reconfig::ReplacementPool::kSparesOnly));
    fault_state.reset();
  }
}
BENCHMARK(BM_McYieldRun_Mixture);

// Operational-workload kernel (not part of the CI ratio gate): one full
// operational run on the Section-7 multiplexed workload — inject, plan the
// reconfiguration, re-schedule the assay on the surviving module pool,
// re-route the droplet transports. Orders of magnitude heavier than the
// structural kernel by construction; tracked so the fig13_operational
// campaign cost stays visible.

void BM_McYieldRun_Operational(benchmark::State& state) {
  const auto workload = sim::AssayWorkload::multiplexed();
  sim::OperationalState operational_state(workload);
  const sim::FaultModel model = sim::FaultModel::fixed_count(25);
  std::int32_t run = 0;
  for (auto _ : state) {
    Rng rng = sim::run_stream(kSeed, run++);
    sim::inject(model, operational_state.faults(), rng);
    benchmark::DoNotOptimize(operational_state.evaluate(
        reconfig::CoveragePolicy::kUsedFaultyPrimaries,
        graph::MatchingEngine::kHopcroftKarp,
        reconfig::ReplacementPool::kSparesOnly));
    operational_state.reset();
  }
}
BENCHMARK(BM_McYieldRun_Operational);

// Fig9-sized sweep (3 designs x 3 sizes x 9 p values) at reduced runs.

constexpr std::int32_t kSweepRuns = 200;

void BM_Fig9Sweep_Legacy(benchmark::State& state) {
  // The pre-campaign shape: a fresh array walk over the grid, each point
  // through the generic HexArray engine.
  for (auto _ : state) {
    std::int64_t successes = 0;
    for (const biochip::DtmbKind kind :
         {biochip::DtmbKind::kDtmb2_6, biochip::DtmbKind::kDtmb3_6,
          biochip::DtmbKind::kDtmb4_4}) {
      for (const std::int32_t primaries : {60, 120, 240}) {
        auto array = biochip::make_dtmb_array_with_primaries(kind, primaries);
        for (const double p :
             {0.80, 0.85, 0.88, 0.90, 0.92, 0.94, 0.96, 0.98, 0.99}) {
          const fault::BernoulliInjector injector(p);
          yield::McOptions options;
          options.runs = kSweepRuns;
          successes += yield::mc_yield(
                           array,
                           [&](biochip::HexArray& a, Rng& rng) {
                             injector.inject(a, rng);
                           },
                           options)
                           .successes;
        }
      }
    }
    benchmark::DoNotOptimize(successes);
  }
}
BENCHMARK(BM_Fig9Sweep_Legacy)->Unit(benchmark::kMillisecond);

void BM_Fig9Sweep_Session(benchmark::State& state) {
  // The same grid through the campaign runner's shared sessions.
  auto parsed =
      campaign::parse_campaign_spec(campaign::builtin_campaign("fig9_smoke"));
  if (!parsed.ok()) {
    state.SkipWithError("builtin fig9_smoke spec failed to parse");
    return;
  }
  campaign::CampaignSpec spec = std::move(*parsed.spec);
  spec.runs = kSweepRuns;
  spec.threads = 1;
  spec.sinks.clear();
  for (auto _ : state) {
    campaign::CampaignRunner runner(spec);
    benchmark::DoNotOptimize(runner.run().size());
  }
}
BENCHMARK(BM_Fig9Sweep_Session)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
