// Ablation: the paper's two reconfiguration categories head-to-head.
//
//   category 1 — application-dependent: re-place the microfluidic modules
//                on fault-free unused cells (no spares; design complexity);
//   category 2 — application-independent: interstitial spares + local
//                reconfiguration (the paper's proposal).
//
// Same silicon area for both: a plain 16x12 array for re-placement versus a
// DTMB(2,6) array with the same total cell count for spare-based repair of
// a fixed placement. Success criteria:
//   * re-placement: all modules (4 mixers, 4 detectors, 2 transport
//     segments) can be placed on healthy cells with fluidic clearance;
//   * spares: the same module set, placed once on the healthy chip, is
//     repairable (every faulty module cell gets an adjacent healthy spare).
#include <iostream>

#include "biochip/dtmb.hpp"
#include "fault/injector.hpp"
#include "fluidics/placement.hpp"
#include "io/table.hpp"
#include "reconfig/local_reconfig.hpp"
#include "yield/monte_carlo.hpp"

int main() {
  using namespace dmfb;
  using fluidics::ModulePlacer;

  const std::vector<fluidics::HexModuleShape> workload = {
      fluidics::mixer_shape(),      fluidics::mixer_shape(),
      fluidics::mixer_shape(),      fluidics::mixer_shape(),
      fluidics::detector_shape(),   fluidics::detector_shape(),
      fluidics::detector_shape(),   fluidics::detector_shape(),
      fluidics::linear_shape(5),    fluidics::linear_shape(5),
  };

  // Plain array: every cell primary, re-placement is the only defence.
  biochip::HexArray plain(hex::Region::parallelogram(16, 12),
                          [](hex::HexCoord) {
                            return biochip::CellRole::kPrimary;
                          });
  // Same area, DTMB(2,6): fixed placement + interstitial spares.
  biochip::HexArray redundant =
      biochip::make_dtmb_array(biochip::DtmbKind::kDtmb2_6, 16, 12);

  // Fixed placement on the redundant chip: mark module cells as used.
  {
    const ModulePlacer placer(redundant);
    const auto placed = placer.place(workload);
    if (!placed) {
      std::cerr << "workload does not fit the redundant chip\n";
      return 1;
    }
    for (const auto& module : *placed) {
      for (const auto cell : module.cells(redundant)) {
        redundant.set_usage(cell, biochip::CellUsage::kAssayUsed);
      }
    }
  }

  io::Table table({"p", "re-placement (plain chip)",
                   "spares, fixed placement (DTMB(2,6))",
                   "spares + re-placement pool"});
  for (const double p : {0.90, 0.93, 0.96, 0.98, 0.99}) {
    yield::McOptions options;
    options.runs = 4000;

    // (1) Re-placement oracle on the plain chip.
    const auto replacement = yield::mc_yield_with_oracle(
        plain,
        [p](biochip::HexArray& a, Rng& rng) {
          fault::BernoulliInjector(p).inject(a, rng);
        },
        [&workload](const biochip::HexArray& a) {
          return ModulePlacer(a).place(workload).has_value();
        },
        options);

    // (2) Spare-based repair of the fixed placement.
    options.policy = reconfig::CoveragePolicy::kUsedFaultyPrimaries;
    const auto spare_based =
        yield::mc_yield_bernoulli(redundant, p, options);

    // (3) Both categories together (spares + unused primaries).
    options.pool = reconfig::ReplacementPool::kSparesAndUnusedPrimaries;
    const auto combined = yield::mc_yield_bernoulli(redundant, p, options);

    table.row(4)
        .cell(p)
        .cell(replacement.value)
        .cell(spare_based.value)
        .cell(combined.value);
  }
  table.print(std::cout,
              "Ablation - module re-placement vs interstitial spares "
              "(equal-area chips, 4000 runs)");
  std::cout
      << "Re-placement tolerates many faults on a lightly loaded chip but "
         "requires re-running placement (design complexity, paper Section "
         "4); interstitial spares repair a fixed layout in place, and the "
         "combination dominates both.\n";
  return 0;
}
