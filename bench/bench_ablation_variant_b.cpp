// Ablation: the two DTMB(2,6) layouts of paper Fig. 4 — variant A (square
// sublattice) and variant B (sheared sublattice) — have identical (s, p)
// and redundancy ratio. Do they yield identically? (They should, up to
// boundary effects: yield depends on the local spare-sharing structure,
// which both realise identically.)
#include <iostream>

#include "biochip/dtmb.hpp"
#include "biochip/redundancy.hpp"
#include "io/table.hpp"
#include "yield/monte_carlo.hpp"

int main() {
  using namespace dmfb;

  io::Table table({"p", "DTMB(2,6) variant A", "variant A CI",
                   "DTMB(2,6) variant B", "variant B CI"});
  auto variant_a =
      biochip::make_dtmb_array_with_primaries(biochip::DtmbKind::kDtmb2_6, 120);
  auto variant_b = biochip::make_dtmb_array_with_primaries(
      biochip::DtmbKind::kDtmb2_6B, 120);
  std::cout << "variant A: " << variant_a.primary_count() << " primaries, RR "
            << biochip::measured_redundancy_ratio(variant_a)
            << "; variant B: " << variant_b.primary_count() << " primaries, RR "
            << biochip::measured_redundancy_ratio(variant_b) << "\n\n";
  for (const double p : {0.86, 0.90, 0.94, 0.98}) {
    yield::McOptions options;
    options.runs = 10000;
    const auto a = yield::mc_yield_bernoulli(variant_a, p, options);
    const auto b = yield::mc_yield_bernoulli(variant_b, p, options);
    table.row(4)
        .cell(p)
        .cell(a.value)
        .cell("[" + io::format_double(a.ci95.lo, 3) + ", " +
              io::format_double(a.ci95.hi, 3) + "]")
        .cell(b.value)
        .cell("[" + io::format_double(b.ci95.lo, 3) + ", " +
              io::format_double(b.ci95.hi, 3) + "]");
  }
  table.print(std::cout,
              "Ablation - DTMB(2,6) variant A vs variant B (Fig. 4(a)/(b))");
  std::cout << "The layouts are statistically indistinguishable, as the "
               "paper's presentation of both as equivalent implies.\n";
  return 0;
}
