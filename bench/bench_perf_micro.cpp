// google-benchmark micro-benchmarks for the performance-critical kernels:
// maximum matching (all three engines), one Monte-Carlo yield run, droplet
// routing, and the covering-walk test planner.
#include <benchmark/benchmark.h>

#include "biochip/dtmb.hpp"
#include "common/rng.hpp"
#include "fault/injector.hpp"
#include "fluidics/router.hpp"
#include "graph/matching.hpp"
#include "reconfig/local_reconfig.hpp"
#include "testplan/stimulus_test.hpp"
#include "yield/monte_carlo.hpp"

namespace {

using namespace dmfb;

graph::BipartiteGraph random_bipartite(std::int32_t left, std::int32_t right,
                                       double edge_prob, std::uint64_t seed) {
  Rng rng(seed);
  graph::BipartiteGraph g(left, right);
  for (std::int32_t a = 0; a < left; ++a) {
    for (std::int32_t b = 0; b < right; ++b) {
      if (rng.bernoulli(edge_prob)) g.add_edge(a, b);
    }
  }
  return g;
}

void BM_Matching(benchmark::State& state, graph::MatchingEngine engine) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const auto g = random_bipartite(n, n, 8.0 / n, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::maximum_matching(g, engine).size);
  }
  state.SetComplexityN(n);
}

void BM_McYieldRun(benchmark::State& state) {
  auto array = biochip::make_dtmb_array_with_primaries(
      biochip::DtmbKind::kDtmb2_6,
      static_cast<std::int32_t>(state.range(0)));
  const fault::BernoulliInjector injector(0.93);
  const reconfig::LocalReconfigurer reconfigurer;
  Rng rng(7);
  for (auto _ : state) {
    injector.inject(array, rng);
    benchmark::DoNotOptimize(reconfigurer.feasible(array));
    array.reset_health();
  }
}

void BM_McYieldThreads(benchmark::State& state) {
  // Full mc_yield_bernoulli experiment (2000 runs on a ~250-primary
  // DTMB(2,6) array) under the threaded engine. Successes are identical for
  // every thread count; items/s is the MC-run throughput, so the 4-thread
  // row should show >= 2x the 1-thread rate on a multi-core host.
  auto array = biochip::make_dtmb_array_with_primaries(
      biochip::DtmbKind::kDtmb2_6, 250);
  yield::McOptions options;
  options.runs = 2000;
  options.threads = static_cast<std::int32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        yield::mc_yield_bernoulli(array, 0.93, options).successes);
  }
  state.SetItemsProcessed(state.iterations() * options.runs);
}

void BM_SingleDropletRoute(benchmark::State& state) {
  const auto side = static_cast<std::int32_t>(state.range(0));
  const biochip::HexArray array(
      hex::Region::parallelogram(side, side),
      [](hex::HexCoord) { return biochip::CellRole::kPrimary; });
  const fluidics::UsableCells usable(array);
  const fluidics::Router router(usable);
  const auto from = array.region().index_of({0, 0});
  const auto to = array.region().index_of({side - 1, side - 1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.shortest_route(from, to).size());
  }
}

void BM_CoveringWalk(benchmark::State& state) {
  const auto side = static_cast<std::int32_t>(state.range(0));
  const auto array =
      biochip::make_dtmb_array(biochip::DtmbKind::kDtmb2_6, side, side);
  for (auto _ : state) {
    benchmark::DoNotOptimize(testplan::plan_covering_walk(array, 0).size());
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_Matching, hopcroft_karp,
                  dmfb::graph::MatchingEngine::kHopcroftKarp)
    ->Range(64, 1024)
    ->Complexity();
BENCHMARK_CAPTURE(BM_Matching, kuhn, dmfb::graph::MatchingEngine::kKuhn)
    ->Range(64, 1024)
    ->Complexity();
BENCHMARK_CAPTURE(BM_Matching, dinic, dmfb::graph::MatchingEngine::kDinic)
    ->Range(64, 1024)
    ->Complexity();
BENCHMARK(BM_McYieldRun)->Arg(100)->Arg(250)->Arg(500);
BENCHMARK(BM_McYieldThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->MeasureProcessCPUTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SingleDropletRoute)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK(BM_CoveringWalk)->Arg(16)->Arg(32);
