// Regenerates paper Figure 8: the maximal bipartite-matching model of
// reconfigurability. A worked instance on a DTMB(2,6) array: inject faults,
// print the bipartite graph BG(A, B, E) (A = faulty primaries, B = healthy
// adjacent spares), the maximum matching found by each engine, and — in an
// unrepairable variant — the Hall violator that certifies failure.
#include <iostream>

#include "biochip/dtmb.hpp"
#include "common/rng.hpp"
#include "fault/injector.hpp"
#include "graph/matching.hpp"
#include "io/ascii_render.hpp"
#include "reconfig/local_reconfig.hpp"

int main() {
  using namespace dmfb;

  auto array = biochip::make_dtmb_array(biochip::DtmbKind::kDtmb2_6, 9, 9);
  Rng rng(0xF18);
  fault::FixedCountInjector(7).inject(array, rng);

  std::cout << "Figure 8 - bipartite matching model of local "
               "reconfiguration\n\n";
  const auto faulty = array.faulty_cells(biochip::CellRole::kPrimary);
  std::cout << "Faulty primary cells (set A):";
  for (const auto cell : faulty) {
    std::cout << ' ' << array.region().coord_at(cell);
  }
  std::cout << "\nEdges (faulty primary -> adjacent healthy spare):\n";
  for (const auto cell : faulty) {
    std::cout << "  " << array.region().coord_at(cell) << " ->";
    for (const auto spare : array.spare_neighbors_of(cell)) {
      if (array.health(spare) == biochip::CellHealth::kHealthy) {
        std::cout << ' ' << array.region().coord_at(spare);
      }
    }
    std::cout << '\n';
  }

  const auto plan = reconfig::LocalReconfigurer().plan(array);
  std::cout << "\nMaximum matching (" << plan.replacements.size()
            << " replacements), success = " << (plan.success ? "yes" : "no")
            << ":\n";
  for (const auto& replacement : plan.replacements) {
    std::cout << "  " << array.region().coord_at(replacement.faulty) << " => "
              << array.region().coord_at(replacement.spare) << '\n';
  }
  std::cout << '\n' << io::render_hex(array, &plan, {.legend = true}) << '\n';

  // An unrepairable instance: kill every spare around one primary.
  array.reset_health();
  const auto victim = array.region().index_of({4, 4});
  array.set_health(victim, biochip::CellHealth::kFaulty);
  for (const auto spare : array.spare_neighbors_of(victim)) {
    array.set_health(spare, biochip::CellHealth::kFaulty);
  }
  const auto failing = reconfig::LocalReconfigurer().plan(array);
  std::cout << "Unrepairable variant: success = "
            << (failing.success ? "yes" : "no")
            << "; uncovered faulty cells:";
  for (const auto cell : failing.unrepairable) {
    std::cout << ' ' << array.region().coord_at(cell);
  }
  std::cout << "\n(Hall's condition fails: the faulty cell's spare "
               "neighbourhood is entirely dead.)\n";
  return 0;
}
