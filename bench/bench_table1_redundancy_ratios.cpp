// Regenerates paper Table 1: redundancy ratios of the defect-tolerant
// architectures, plus finite-array convergence and the measured (s, p)
// structure of every design.
//
//   Paper row:  DTMB(1,6) 0.1667 | DTMB(2,6) 0.3333 | DTMB(3,6) 0.5000 |
//               DTMB(4,4) 1.0000
#include <iostream>

#include "biochip/dtmb.hpp"
#include "biochip/redundancy.hpp"
#include "io/table.hpp"

int main() {
  using namespace dmfb;
  using biochip::DtmbKind;

  io::Table table({"design", "s", "p", "RR (asymptotic)", "RR @ 12x12",
                   "RR @ 24x24", "RR @ 60x60", "interior s", "interior p"});
  for (const DtmbKind kind : biochip::kAllDtmbKinds) {
    const auto info = biochip::dtmb_info(kind);
    const auto small = biochip::make_dtmb_array(kind, 12, 12);
    const auto medium = biochip::make_dtmb_array(kind, 24, 24);
    const auto large = biochip::make_dtmb_array(kind, 60, 60);
    const auto prop = biochip::measure_interstitial_property(medium);
    table.row(4)
        .cell(std::string(info.name))
        .cell(info.s)
        .cell(info.p)
        .cell(info.redundancy_ratio)
        .cell(biochip::measured_redundancy_ratio(small))
        .cell(biochip::measured_redundancy_ratio(medium))
        .cell(biochip::measured_redundancy_ratio(large))
        .cell(std::to_string(prop.s_min) + ".." + std::to_string(prop.s_max))
        .cell(std::to_string(prop.p_min) + ".." + std::to_string(prop.p_max));
  }
  table.print(std::cout,
              "Table 1 - redundancy ratios of the defect-tolerant designs");
  std::cout << "Paper values: 0.1667 / 0.3333 / 0.5000 / 1.0000 "
               "(variant B shares DTMB(2,6)'s ratio)\n";
  return 0;
}
