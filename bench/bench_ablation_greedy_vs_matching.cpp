// Ablation: how much yield does optimal (matching-based) spare assignment
// buy over greedy first-fit? Greedy can strand a repairable chip by taking
// the wrong spare; the gap quantifies the value of the paper's bipartite
// matching formulation.
#include <iostream>

#include "biochip/dtmb.hpp"
#include "fault/injector.hpp"
#include "io/table.hpp"
#include "reconfig/local_reconfig.hpp"
#include "yield/monte_carlo.hpp"

int main() {
  using namespace dmfb;

  io::Table table({"design", "p", "yield (matching)", "yield (greedy)",
                   "greedy losses / 10000"});
  for (const auto kind :
       {biochip::DtmbKind::kDtmb2_6, biochip::DtmbKind::kDtmb3_6}) {
    auto array = biochip::make_dtmb_array_with_primaries(kind, 120);
    for (const double p : {0.88, 0.92, 0.96}) {
      const fault::BernoulliInjector injector(p);
      const reconfig::LocalReconfigurer matching;
      const reconfig::GreedyReconfigurer greedy;
      Rng rng(0x6EEE);
      std::int32_t matching_ok = 0;
      std::int32_t greedy_ok = 0;
      std::int32_t greedy_losses = 0;  // matching repairs, greedy fails
      const std::int32_t kRuns = 10000;
      for (std::int32_t run = 0; run < kRuns; ++run) {
        injector.inject(array, rng);
        const bool m = matching.feasible(array);
        const bool g = greedy.feasible(array);
        matching_ok += m;
        greedy_ok += g;
        greedy_losses += (m && !g);
        array.reset_health();
      }
      table.row(4)
          .cell(std::string(biochip::dtmb_info(kind).name))
          .cell(p)
          .cell(static_cast<double>(matching_ok) / kRuns)
          .cell(static_cast<double>(greedy_ok) / kRuns)
          .cell(greedy_losses);
    }
  }
  table.print(std::cout,
              "Ablation - optimal matching vs greedy first-fit assignment");
  std::cout << "Greedy never repairs a chip matching cannot (verified by "
               "construction); the last column is pure loss.\n";
  return 0;
}
