// Regenerates paper Figures 11 and 12: the multiplexed in-vitro diagnostics
// biochip mapped onto DTMB(2,6) — 252 primary cells (108 used by the
// assays) + 91 spare cells — and a successful local reconfiguration in the
// presence of 10 random faulty cells (Fig. 12(b)).
#include <iostream>

#include "assay/multiplexed_chip.hpp"
#include "common/rng.hpp"
#include "fault/injector.hpp"
#include "io/ascii_render.hpp"
#include "reconfig/local_reconfig.hpp"
#include "yield/analytic.hpp"

int main() {
  using namespace dmfb;

  auto chip = assay::make_multiplexed_chip();
  std::cout << "Figure 11/12(a) - DTMB(2,6)-based multiplexed diagnostics "
               "chip\n"
            << "  primaries: " << chip.array.primary_count()
            << " (assay-used: " << chip.array.used_count()
            << "), spares: " << chip.array.spare_count()
            << ", total: " << chip.array.cell_count() << '\n'
            << "  paper:     252 (108 used), 91 spares, 343 total\n"
            << "  no-redundancy yield of the 108 used cells at p=0.99: "
            << yield::used_cells_yield(chip.array.used_count(), 0.99)
            << "  (paper: 0.3378)\n\n";

  std::cout << io::render_hex(chip.array, nullptr, {.legend = true}) << '\n';

  // Fig. 12(b): 10 random faults, then local reconfiguration. The seed is
  // chosen so several faults land on assay cells, as in the paper's figure.
  Rng rng(0xF004);
  const auto faults = fault::FixedCountInjector(10).inject(chip.array, rng);
  std::cout << "Injected 10 random faults:\n";
  for (const auto& record : faults.records) {
    std::cout << "  " << chip.array.region().coord_at(record.cell) << " ("
              << to_string(*record.catastrophic) << ")\n";
  }
  const auto plan =
      reconfig::LocalReconfigurer(
          reconfig::CoveragePolicy::kUsedFaultyPrimaries)
          .plan(chip.array);
  std::cout << "\nLocal reconfiguration "
            << (plan.success ? "succeeded" : "FAILED") << "; "
            << plan.replacements.size()
            << " faulty assay cells replaced by adjacent spares:\n";
  for (const auto& replacement : plan.replacements) {
    std::cout << "  " << chip.array.region().coord_at(replacement.faulty)
              << " => " << chip.array.region().coord_at(replacement.spare)
              << '\n';
  }
  std::cout << '\n'
            << io::render_hex(chip.array, &plan, {.legend = true}) << '\n';
  return plan.success ? 0 : 1;
}
