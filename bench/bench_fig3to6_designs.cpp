// Regenerates paper Figures 1(b) and 3-6: the hexagonal-electrode array and
// the DTMB(1,6), DTMB(2,6) (both variants), DTMB(3,6) and DTMB(4,4)
// layouts, as ASCII renderings, together with the graph-model statistics of
// Fig. 3(b) (nodes = cells, edges = physical adjacencies).
#include <iostream>

#include "biochip/dtmb.hpp"
#include "graph/graph.hpp"
#include "io/ascii_render.hpp"
#include "io/table.hpp"

int main() {
  using namespace dmfb;

  io::Table summary({"design", "cells", "primaries", "spares", "graph edges",
                     "connected"});
  for (const biochip::DtmbKind kind : biochip::kAllDtmbKinds) {
    const auto info = biochip::dtmb_info(kind);
    const auto array = biochip::make_dtmb_array(kind, 12, 10);
    std::cout << "--- " << info.name << " (12x10 patch; o = spare, . = primary)"
              << " ---\n"
              << io::render_hex(array) << '\n';
    const auto graph = array.adjacency_graph();
    summary.row(0)
        .cell(std::string(info.name))
        .cell(array.cell_count())
        .cell(array.primary_count())
        .cell(array.spare_count())
        .cell(graph.edge_count())
        .cell(graph::is_connected(graph) ? "yes" : "no");
  }
  summary.print(std::cout,
                "Figures 3-6 - layout and Fig. 3(b) graph-model statistics");
  return 0;
}
