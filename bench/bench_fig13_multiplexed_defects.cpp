// Regenerates paper Figure 13: yield of the DTMB(2,6)-based multiplexed
// diagnostics chip in the presence of m random cell failures (Monte-Carlo,
// 10000 runs per point, as in the paper). Thin wrapper over the campaign
// engine: the grid lives in campaigns/fig13.campaign (= builtin:fig13).
//
// Paper claim: yield >= 0.90 for up to 35 faults. The campaign sweeps both
// replacement models that bracket the (not fully specified) paper
// semantics: spares-only, and spares + healthy unused primaries
// (category-1 reconfiguration, Fig. 12's legend).
#include <algorithm>
#include <iostream>

#include "campaign/builtin.hpp"
#include "campaign/runner.hpp"
#include "campaign/sink.hpp"

int main() {
  using namespace dmfb;

  auto parsed_spec =
      campaign::parse_campaign_spec(campaign::builtin_campaign("fig13"));
  if (!parsed_spec.ok()) {
    std::cerr << "builtin fig13 spec is invalid:\n" << parsed_spec.error_text();
    return 1;
  }
  campaign::CampaignRunner runner(std::move(*parsed_spec.spec));
  campaign::ConsoleSink console(std::cout);
  runner.add_sink(console);
  const auto results = runner.run();

  double spares_cross90 = -1;
  double combined_cross90 = -1;
  for (const campaign::PointResult& result : results) {
    if (result.estimate.value < 0.90) continue;
    if (result.point.pool == reconfig::ReplacementPool::kSparesOnly) {
      spares_cross90 = std::max(spares_cross90, result.point.param);
    } else {
      combined_cross90 = std::max(combined_cross90, result.point.param);
    }
  }
  std::cout << "Largest m with yield >= 0.90: spares-only = "
            << spares_cross90 << ", spares+unused = " << combined_cross90
            << "  (paper: >= 0.90 up to m = 35)\n";
  return 0;
}
