// Regenerates paper Figure 13: yield of the DTMB(2,6)-based multiplexed
// diagnostics chip in the presence of m random cell failures (Monte-Carlo,
// 10000 runs per point, as in the paper).
//
// Paper claim: yield >= 0.90 for up to 35 faults. We print two replacement
// models that bracket the (not fully specified) paper semantics:
//   * spares-only        — faulty assay cells replaced by adjacent spares;
//   * spares + unused    — category-1 reconfiguration added: healthy unused
//                          primary cells may also take over (Fig. 12's
//                          legend distinguishes unused primaries).
#include <iostream>

#include "assay/multiplexed_chip.hpp"
#include "io/table.hpp"
#include "yield/monte_carlo.hpp"

int main() {
  using namespace dmfb;

  auto chip = assay::make_multiplexed_chip();
  const int kRuns = 10000;

  io::Table table({"m (faults)", "yield (spares only)", "95% CI",
                   "yield (spares + unused primaries)", "95% CI "});
  double spares_cross90 = -1;
  double combined_cross90 = -1;
  for (const std::int32_t m :
       {0, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 60}) {
    yield::McOptions options;
    options.runs = kRuns;
    options.policy = reconfig::CoveragePolicy::kUsedFaultyPrimaries;
    options.pool = reconfig::ReplacementPool::kSparesOnly;
    const auto spares = yield::mc_yield_fixed_faults(chip.array, m, options);
    options.pool = reconfig::ReplacementPool::kSparesAndUnusedPrimaries;
    const auto combined = yield::mc_yield_fixed_faults(chip.array, m, options);
    table.row(4)
        .cell(m)
        .cell(spares.value)
        .cell("[" + io::format_double(spares.ci95.lo, 3) + ", " +
              io::format_double(spares.ci95.hi, 3) + "]")
        .cell(combined.value)
        .cell("[" + io::format_double(combined.ci95.lo, 3) + ", " +
              io::format_double(combined.ci95.hi, 3) + "]");
    if (spares.value >= 0.90) spares_cross90 = m;
    if (combined.value >= 0.90) combined_cross90 = m;
  }
  table.print(std::cout,
              "Figure 13 - yield vs number of random cell failures m "
              "(252+91-cell chip, 108 assay cells, " +
                  std::to_string(kRuns) + " runs)");
  std::cout << "Largest m with yield >= 0.90: spares-only = "
            << spares_cross90 << ", spares+unused = " << combined_cross90
            << "  (paper: >= 0.90 up to m = 35)\n";
  return 0;
}
