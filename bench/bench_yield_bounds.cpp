// Extension bench: analytic yield bounds vs Monte-Carlo for every design.
//
// The paper's Section 6 states that beyond DTMB(1,6) "it is hard to develop
// an analytical model"; these provable lower/upper bounds (dedicated-spare
// clusters / disjoint death traps) bracket the simulated value and give the
// closed-form handle the paper lacked.
#include <iostream>

#include "biochip/dtmb.hpp"
#include "io/table.hpp"
#include "yield/bounds.hpp"
#include "yield/monte_carlo.hpp"

int main() {
  using namespace dmfb;
  using biochip::DtmbKind;

  io::Table table({"design", "p", "analytic lower", "Monte-Carlo",
                   "analytic upper"});
  for (const DtmbKind kind :
       {DtmbKind::kDtmb1_6, DtmbKind::kDtmb2_6, DtmbKind::kDtmb3_6,
        DtmbKind::kDtmb4_4}) {
    auto array = biochip::make_dtmb_array(kind, 14, 14);
    for (const double p : {0.90, 0.94, 0.98}) {
      const auto bounds = yield::analytic_yield_bounds(array, p);
      yield::McOptions options;
      options.runs = 10000;
      const auto mc = yield::mc_yield_bernoulli(array, p, options);
      table.row(4)
          .cell(std::string(biochip::dtmb_info(kind).name))
          .cell(p)
          .cell(bounds.lower)
          .cell(mc.value)
          .cell(bounds.upper);
    }
  }
  table.print(std::cout,
              "Extension - provable yield bounds bracket Monte-Carlo "
              "(14x14 arrays, 10000 runs)");
  std::cout << "The dedicated-spare lower bound is exact for DTMB(1,6) "
               "clusters (the paper's closed form is the special case).\n";
  return 0;
}
