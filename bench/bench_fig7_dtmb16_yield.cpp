// Regenerates paper Figure 7: yield of DTMB(1,6) versus a biochip without
// redundancy, for several survival probabilities p and primary-cell counts
// n. The paper plots the closed form Y = (p^7 + 7 p^6 (1-p))^(n/6); we print
// that formula, a Monte-Carlo cross-check on cluster-exact arrays (where the
// formula is exact), and the no-redundancy baseline p^n.
#include <iostream>

#include "biochip/dtmb.hpp"
#include "io/table.hpp"
#include "yield/analytic.hpp"
#include "yield/monte_carlo.hpp"

int main() {
  using namespace dmfb;

  const int kRuns = 10000;  // as in the paper
  std::cout << "Figure 7 - DTMB(1,6) yield vs no redundancy ("
            << kRuns << " Monte-Carlo runs per point)\n\n";

  for (const std::int32_t n : {60, 120, 240}) {
    auto array = biochip::make_dtmb16_cluster_array(n / 6);
    io::Table table({"p", "no-redundancy p^n", "DTMB(1,6) analytic",
                     "DTMB(1,6) Monte-Carlo", "MC 95% CI"});
    for (const double p :
         {0.90, 0.92, 0.94, 0.95, 0.96, 0.97, 0.98, 0.99, 1.00}) {
      yield::McOptions options;
      options.runs = kRuns;
      const auto mc = yield::mc_yield_bernoulli(array, p, options);
      table.row(4)
          .cell(p)
          .cell(yield::no_redundancy_yield(n, p))
          .cell(yield::dtmb16_yield(n, p))
          .cell(mc.value)
          .cell("[" + io::format_double(mc.ci95.lo, 4) + ", " +
                io::format_double(mc.ci95.hi, 4) + "]");
    }
    table.print(std::cout, "n = " + std::to_string(n) + " primary cells");
  }
  std::cout << "Shape check (paper): interstitial redundancy lifts yield at "
               "every p; the gap grows with n.\n";
  return 0;
}
