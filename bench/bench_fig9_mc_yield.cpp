// Regenerates paper Figure 9: Monte-Carlo yield (10000 runs, as in the
// paper) for DTMB(2,6), DTMB(3,6) and DTMB(4,4) across survival
// probabilities p and array sizes n. Thin wrapper over the campaign engine:
// the grid lives in campaigns/fig9.campaign (= builtin:fig9).
#include <iostream>

#include "campaign/builtin.hpp"
#include "campaign/runner.hpp"
#include "campaign/sink.hpp"
#include "common/parse.hpp"

int main(int argc, char** argv) {
  using namespace dmfb;

  // Usage: bench_fig9_mc_yield [threads]; 0 = one per hardware thread.
  // The numbers are identical for every thread count (per-run Rng streams);
  // only the wall-clock changes.
  std::int32_t threads = 0;
  if (argc > 1) {
    const auto parsed = common::parse_int_in(argv[1], 0, 4096);
    if (!parsed) {
      std::cerr << "usage: " << argv[0]
                << " [threads]   (threads >= 0; 0 = hardware concurrency)\n";
      return 2;
    }
    threads = static_cast<std::int32_t>(*parsed);
  }

  auto parsed_spec =
      campaign::parse_campaign_spec(campaign::builtin_campaign("fig9"));
  if (!parsed_spec.ok()) {
    std::cerr << "builtin fig9 spec is invalid:\n" << parsed_spec.error_text();
    return 1;
  }
  campaign::CampaignSpec spec = std::move(*parsed_spec.spec);
  spec.threads = threads;

  std::cout << "Figure 9 - Monte-Carlo yield estimation (" << spec.runs
            << " runs per point, campaigns/fig9.campaign)\n\n";
  campaign::CampaignRunner runner(std::move(spec));
  campaign::ConsoleSink console(std::cout);
  runner.add_sink(console);
  runner.run();
  std::cout << "Shape check (paper): higher redundancy level => higher "
               "yield at every p.\n";
  return 0;
}
