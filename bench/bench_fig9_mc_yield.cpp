// Regenerates paper Figure 9: Monte-Carlo yield (10000 runs, as in the
// paper) for DTMB(2,6), DTMB(3,6) and DTMB(4,4) across survival
// probabilities p and array sizes n. Every cell — primary and spare — fails
// independently with probability 1-p; a run succeeds iff maximal bipartite
// matching repairs every faulty primary.
#include <cstdlib>
#include <iostream>

#include "biochip/dtmb.hpp"
#include "biochip/redundancy.hpp"
#include "io/table.hpp"
#include "yield/monte_carlo.hpp"

int main(int argc, char** argv) {
  using namespace dmfb;
  using biochip::DtmbKind;

  // Usage: bench_fig9_mc_yield [threads]; 0 = one per hardware thread.
  // The numbers are identical for every thread count (per-run Rng streams);
  // only the wall-clock changes.
  std::int32_t threads = 0;
  if (argc > 1) {
    char* end = nullptr;
    const long parsed = std::strtol(argv[1], &end, 10);
    if (end == argv[1] || *end != '\0' || parsed < 0 || parsed > 4096) {
      std::cerr << "usage: " << argv[0]
                << " [threads]   (threads >= 0; 0 = hardware concurrency)\n";
      return 2;
    }
    threads = static_cast<std::int32_t>(parsed);
  }

  const int kRuns = 10000;
  std::cout << "Figure 9 - Monte-Carlo yield estimation (" << kRuns
            << " runs per point, threads="
            << (threads == 0 ? "auto" : std::to_string(threads)) << ")\n\n";

  for (const std::int32_t n : {60, 120, 240}) {
    io::Table table({"p", "DTMB(2,6)", "DTMB(3,6)", "DTMB(4,4)"});
    auto a26 = biochip::make_dtmb_array_with_primaries(DtmbKind::kDtmb2_6, n);
    auto a36 = biochip::make_dtmb_array_with_primaries(DtmbKind::kDtmb3_6, n);
    auto a44 = biochip::make_dtmb_array_with_primaries(DtmbKind::kDtmb4_4, n);
    for (const double p :
         {0.80, 0.85, 0.88, 0.90, 0.92, 0.94, 0.96, 0.98, 0.99}) {
      yield::McOptions options;
      options.runs = kRuns;
      options.threads = threads;
      table.row(4)
          .cell(p)
          .cell(yield::mc_yield_bernoulli(a26, p, options).value)
          .cell(yield::mc_yield_bernoulli(a36, p, options).value)
          .cell(yield::mc_yield_bernoulli(a44, p, options).value);
    }
    table.print(std::cout,
                "n ~ " + std::to_string(n) + " primary cells (" +
                    std::to_string(a26.primary_count()) + "/" +
                    std::to_string(a36.primary_count()) + "/" +
                    std::to_string(a44.primary_count()) + " exact)");
  }
  std::cout << "Shape check (paper): higher redundancy level => higher "
               "yield at every p.\n";
  return 0;
}
