// Regenerates paper Figure 2: the boundary spare-row baseline and its
// "shifted replacement" cost, versus interstitial redundancy's one-hop
// local reconfiguration.
//
//   Fig. 2(b): a fault in Module 1 (adjacent to the spare row) relocates
//              only Module 1.
//   Fig. 2(c): a fault in Module 3 drags fault-free Module 2 into the
//              reconfiguration — the cost interstitial redundancy avoids.
#include <iostream>

#include "biochip/dtmb.hpp"
#include "io/ascii_render.hpp"
#include "io/table.hpp"
#include "reconfig/local_reconfig.hpp"
#include "reconfig/shifted_replacement.hpp"
#include "yield/analytic.hpp"

int main() {
  using namespace dmfb;
  using reconfig::SpareRowChip;
  using reconfig::ShiftedReplacer;

  std::cout << "Figure 2 - spare-row baseline with shifted replacement\n\n";
  {
    const SpareRowChip chip = SpareRowChip::make_figure2_example();
    std::cout << "Layout (digits = module ids, o = boundary spare row):\n"
              << io::render_square(chip) << '\n';
  }

  io::Table table({"fault location", "scheme", "success", "cells remapped",
                   "modules reconfigured", "fault-free modules dragged in"});

  struct Case {
    const char* label;
    sq::SquareCoord fault;
  };
  const Case cases[] = {
      {"Module 1 (next to spare row), Fig. 2(b)", {1, 4}},
      {"Module 2 (middle)", {5, 2}},
      {"Module 3 (far from spare row), Fig. 2(c)", {5, 1}},
  };
  for (const Case& c : cases) {
    SpareRowChip chip = SpareRowChip::make_figure2_example();
    ShiftedReplacer replacer(chip);
    const auto plan = replacer.replace(c.fault);
    table.row(0)
        .cell(c.label)
        .cell("spare-row / shifted")
        .cell(plan.success ? "yes" : "no")
        .cell(plan.cells_remapped())
        .cell(static_cast<std::int32_t>(plan.modules_affected.size()))
        .cell(plan.collateral_modules());
    // Interstitial comparison: one fault is repaired by one adjacent spare;
    // only the module containing the fault is touched.
    table.row(0)
        .cell(c.label)
        .cell("interstitial / local")
        .cell("yes")
        .cell(1)
        .cell(1)
        .cell(0);
  }
  table.print(std::cout, "Reconfiguration cost: shifted replacement vs "
                         "interstitial local reconfiguration");

  // Cost scaling with distance from the spare row, on a taller chip.
  io::Table scaling({"fault row (0 = top, spare row = 11)",
                     "cells remapped (shifted)", "cells remapped (local)"});
  for (std::int32_t row = 0; row <= 10; row += 2) {
    SpareRowChip chip(6, 12, 1);
    chip.place_module({1, {0, 0}, 6, 11});
    ShiftedReplacer replacer(chip);
    const auto plan = replacer.replace({3, row});
    scaling.row(0).cell(row).cell(plan.cells_remapped()).cell(1);
  }
  scaling.print(std::cout,
                "Shifted-replacement cost grows with distance to the "
                "boundary; local reconfiguration stays at one cell");

  // Yield at equal redundancy: a 7-row column (6 primaries + 1 boundary
  // spare) is combinatorially the same cluster as DTMB(1,6)'s spare + 6
  // neighbours, so raw yield is IDENTICAL — the paper's case against
  // spare rows is entirely about reconfiguration cost.
  io::Table equivalence({"p", "spare-row yield (W=20, H=7)",
                         "DTMB(1,6) yield (n=120)"});
  for (const double p : {0.90, 0.95, 0.98, 0.99}) {
    equivalence.row(4)
        .cell(p)
        .cell(yield::spare_row_yield(20, 7, p))
        .cell(yield::dtmb16_yield(120, p));
  }
  equivalence.print(std::cout,
                    "Equal redundancy, equal yield - the architectures "
                    "differ only in reconfiguration cost");
  return 0;
}
