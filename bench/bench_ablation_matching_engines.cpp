// Ablation: the three maximum-matching engines (Hopcroft-Karp, Kuhn,
// Dinic) must produce identical yields; this bench confirms agreement on a
// shared fault stream and compares wall-clock cost.
#include <chrono>
#include <iostream>

#include "biochip/dtmb.hpp"
#include "io/table.hpp"
#include "yield/monte_carlo.hpp"

int main() {
  using namespace dmfb;
  using Clock = std::chrono::steady_clock;

  auto array =
      biochip::make_dtmb_array_with_primaries(biochip::DtmbKind::kDtmb2_6, 240);
  const double p = 0.93;

  io::Table table({"engine", "yield @ p=0.93", "runs", "time (ms)"});
  double reference = -1.0;
  bool all_agree = true;
  for (const auto engine :
       {graph::MatchingEngine::kHopcroftKarp, graph::MatchingEngine::kKuhn,
        graph::MatchingEngine::kDinic}) {
    yield::McOptions options;
    options.runs = 10000;
    options.engine = engine;
    const auto start = Clock::now();
    const auto estimate = yield::mc_yield_bernoulli(array, p, options);
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             Clock::now() - start)
                             .count();
    table.row(4)
        .cell(std::string(to_string(engine)))
        .cell(estimate.value)
        .cell(static_cast<std::int64_t>(estimate.runs))
        .cell(static_cast<std::int64_t>(elapsed));
    if (reference < 0) {
      reference = estimate.value;
    } else if (estimate.value != reference) {
      all_agree = false;  // same seed, same fault stream: must be identical
    }
  }
  table.print(std::cout, "Ablation - matching engines (identical seeds => "
                         "identical yields expected)");
  std::cout << "Engines agree exactly: " << (all_agree ? "yes" : "NO") << '\n';
  return all_agree ? 0 : 1;
}
