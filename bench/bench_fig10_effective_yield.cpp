// Regenerates paper Figure 10: effective yield EY = Y / (1 + RR) for the
// different redundancy levels, with n = 100 primary cells (the paper's
// setting). Reports the measured crossover: DTMB(4,4) is the right choice
// at small p, lighter redundancy (DTMB(1,6)/(2,6)) at high p.
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/design_advisor.hpp"
#include "io/table.hpp"

int main() {
  using namespace dmfb;

  yield::McOptions options;
  options.runs = 10000;
  const core::DesignAdvisor advisor(100, options);

  const std::vector<double> ps = {0.80, 0.84, 0.88, 0.90,
                                  0.92, 0.94, 0.96, 0.98, 0.99};
  io::Table table({"p", "no-redundancy", "DTMB(1,6)", "DTMB(2,6)",
                   "DTMB(3,6)", "DTMB(4,4)", "best (EY)"});
  std::map<double, std::string> best_at_p;
  for (const double p : ps) {
    const auto advice = advisor.assess(p);
    auto row = table.row(4);
    row.cell(p);
    for (const auto& assessment : advice.assessments) {
      row.cell(assessment.effective_yield);
    }
    const auto& best = advice.best_effective_yield();
    row.cell(best.name);
    best_at_p[p] = best.name;
  }
  table.print(std::cout,
              "Figure 10 - effective yield EY = Y/(1+RR), n = 100 primaries "
              "(10000 MC runs)");

  std::cout << "Crossover summary: ";
  for (const double p : ps) std::cout << "p=" << p << "->" << best_at_p[p] << "  ";
  std::cout << "\nShape check (paper): high redundancy (DTMB(4,4)) wins at "
               "small p; low redundancy (DTMB(1,6)/(2,6)) wins at high p.\n";
  return 0;
}
