// Regenerates paper Figure 10: effective yield EY = Y / (1 + RR) for the
// different redundancy levels, with n = 100 primary cells (the paper's
// setting). Thin wrapper over the campaign engine: the sweep lives in
// campaigns/effective_yield.campaign (= builtin:effective_yield); the
// no-redundancy baseline runs as a plain all-primary array through the same
// Monte-Carlo engine as every other design.
//
// Reports the measured crossover: DTMB(4,4) is the right choice at small p,
// lighter redundancy (DTMB(1,6)/(2,6)) at high p.
#include <iostream>
#include <map>
#include <string>

#include "campaign/builtin.hpp"
#include "campaign/runner.hpp"
#include "campaign/sink.hpp"

int main() {
  using namespace dmfb;

  auto parsed_spec = campaign::parse_campaign_spec(
      campaign::builtin_campaign("effective_yield"));
  if (!parsed_spec.ok()) {
    std::cerr << "builtin effective_yield spec is invalid:\n"
              << parsed_spec.error_text();
    return 1;
  }
  campaign::CampaignRunner runner(std::move(*parsed_spec.spec));
  campaign::ConsoleSink console(std::cout);
  runner.add_sink(console);
  const auto results = runner.run();

  // Best effective yield per p (grid order: design outer, p inner).
  std::map<double, const campaign::PointResult*> best_at_p;
  for (const campaign::PointResult& result : results) {
    auto& best = best_at_p[result.point.param];
    if (best == nullptr || result.effective_yield > best->effective_yield) {
      best = &result;
    }
  }
  std::cout << "Crossover summary: ";
  for (const auto& [p, best] : best_at_p) {
    std::cout << "p=" << p << "->" << campaign::to_string(best->point.design)
              << "  ";
  }
  std::cout << "\nShape check (paper): high redundancy (DTMB(4,4)) wins at "
               "small p; low redundancy (DTMB(1,6)/(2,6)) wins at high p.\n";
  return 0;
}
