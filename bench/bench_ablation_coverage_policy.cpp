// Ablation: Fig. 13 semantics. Three progressively looser readings of
// "the chip still works after m faults" on the multiplexed diagnostics
// chip:
//   cover-all      — every faulty primary needs an adjacent healthy spare;
//   cover-used     — only the 108 assay cells need repair (spares only);
//   cover-used+    — assay cells may also be taken over by healthy unused
//                    primaries (category-1 + category-2 reconfiguration).
#include <iostream>

#include "assay/multiplexed_chip.hpp"
#include "io/table.hpp"
#include "yield/monte_carlo.hpp"

int main() {
  using namespace dmfb;

  auto chip = assay::make_multiplexed_chip();
  io::Table table({"m (faults)", "cover-all", "cover-used (spares)",
                   "cover-used (spares+unused)"});
  for (const std::int32_t m : {5, 10, 15, 20, 25, 30, 35, 45}) {
    yield::McOptions options;
    options.runs = 10000;

    options.policy = reconfig::CoveragePolicy::kAllFaultyPrimaries;
    options.pool = reconfig::ReplacementPool::kSparesOnly;
    const double cover_all =
        yield::mc_yield_fixed_faults(chip.array, m, options).value;

    options.policy = reconfig::CoveragePolicy::kUsedFaultyPrimaries;
    const double cover_used =
        yield::mc_yield_fixed_faults(chip.array, m, options).value;

    options.pool = reconfig::ReplacementPool::kSparesAndUnusedPrimaries;
    const double cover_used_plus =
        yield::mc_yield_fixed_faults(chip.array, m, options).value;

    table.row(4).cell(m).cell(cover_all).cell(cover_used).cell(
        cover_used_plus);
  }
  table.print(std::cout,
              "Ablation - coverage policy / replacement pool on the "
              "multiplexed chip (10000 runs)");
  std::cout << "cover-all is far too strict for an application chip (it "
               "repairs cells no assay touches); the paper's Fig. 13 numbers "
               "sit between the two cover-used variants.\n";
  return 0;
}
