// Extension bench: how faults degrade assay *throughput* (not just yield).
//
// A fault that disables a mixer or detector does not scrap a reconfigurable
// chip — the schedule re-binds operations to the surviving resources and
// the assays finish later. This bench schedules the paper's multiplexed
// in-vitro diagnostics workload against shrinking resource pools and
// reports the makespan, connecting cell-level defect tolerance to
// system-level service degradation.
#include <iostream>

#include "assay/list_scheduler.hpp"
#include "assay/sequencing_graph.hpp"
#include "io/table.hpp"

int main() {
  using namespace dmfb;
  using assay::ListScheduler;
  using assay::SequencingGraph;

  const auto workload = SequencingGraph::multiplexed_ivd();
  std::cout << "Workload: multiplexed IVD, " << workload.op_count()
            << " operations, critical path " << workload.critical_path()
            << " s, total work " << workload.total_work() << " s\n\n";

  io::Table table({"mixers", "detectors", "makespan (s)",
                   "slowdown vs full chip"});
  const double full = ListScheduler({4, 4, 4})
                          .schedule(workload)
                          .makespan();
  for (const std::int32_t mixers : {4, 3, 2, 1}) {
    for (const std::int32_t detectors : {4, 2, 1}) {
      const ListScheduler scheduler({4, mixers, detectors});
      const double makespan = scheduler.schedule(workload).makespan();
      table.row(3)
          .cell(mixers)
          .cell(detectors)
          .cell(makespan)
          .cell(makespan / full);
    }
  }
  table.print(std::cout,
              "Extension - makespan vs surviving resources (faults shrink "
              "the pool; assays slow down instead of failing)");

  // The dilution ladder is serial by construction: resources barely help.
  const auto ladder = SequencingGraph::dilution_ladder(5);
  io::Table ladder_table({"mixers", "makespan (s)", "critical path (s)"});
  for (const std::int32_t mixers : {1, 2, 4}) {
    ladder_table.row(3)
        .cell(mixers)
        .cell(ListScheduler({2, mixers, 1}).schedule(ladder).makespan())
        .cell(ladder.critical_path());
  }
  ladder_table.print(std::cout,
                     "Serial dilution ladder: dependency-bound, so extra "
                     "mixers cannot help");
  return 0;
}
