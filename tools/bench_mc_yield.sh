#!/usr/bin/env sh
# Emits the Monte-Carlo kernel benchmark artifact BENCH_mc_yield.json.
#
# Usage: tools/bench_mc_yield.sh [bench-binary] [output-json]
#   bench-binary  default: build/bench_sim_session
#   output-json   default: BENCH_mc_yield.json
#
# The artifact is Google Benchmark's JSON output for bench_sim_session:
# the legacy-vs-session one-run kernels (BM_McYieldRun_*) and the
# fig9-sized sweep pair (BM_Fig9Sweep_*). CI checks the kernel against the
# checked-in baseline with tools/check_bench_regression.py; refresh the
# baseline by copying a fresh artifact over
# bench/baselines/BENCH_mc_yield.json.
set -eu

BENCH_BIN="${1:-build/bench_sim_session}"
OUT="${2:-BENCH_mc_yield.json}"

if [ ! -x "$BENCH_BIN" ]; then
  echo "bench_mc_yield.sh: bench binary '$BENCH_BIN' not found or not" \
       "executable (build with -DDMFB_BUILD_BENCH=ON and Google Benchmark" \
       "installed)" >&2
  exit 2
fi

# --benchmark_min_time is left at its default: its argument syntax changed
# across Google Benchmark releases (plain double vs "0.5s"), and the default
# half-second per measurement is already steady enough for the ratio gate.
"$BENCH_BIN" \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true
echo "wrote $OUT" >&2
