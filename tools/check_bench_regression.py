#!/usr/bin/env python3
"""Benchmark regression gate for the Monte-Carlo session kernel.

Usage:
    check_bench_regression.py CURRENT.json BASELINE.json [tolerance]

Both files are Google Benchmark JSON artifacts from bench_sim_session
(see tools/bench_mc_yield.sh). The gate is *ratio-based* so it works on any
machine: absolute nanoseconds differ wildly between a laptop and a CI
runner, but the session/legacy kernel ratio measured within one process is
stable. The check fails (exit 1) when

    current(session/legacy) > baseline(session/legacy) * (1 + tolerance)

i.e. when the one-run session kernel lost more than `tolerance` (default
0.20 = 20%) of its advantage over the legacy kernel recorded in the
checked-in baseline. It also fails outright if the session kernel is no
longer faster than the legacy kernel at all.
"""
import json
import sys

LEGACY = "BM_McYieldRun_Legacy"
SESSION = "BM_McYieldRun_Session"


def kernel_time(artifact, name):
    """Mean real_time for `name`, accepting aggregate or plain entries."""
    exact_mean = None
    plain = None
    for bench in artifact.get("benchmarks", []):
        run_name = bench.get("run_name", bench.get("name", ""))
        if run_name != name:
            continue
        if bench.get("aggregate_name") == "mean":
            exact_mean = float(bench["real_time"])
        elif "aggregate_name" not in bench:
            plain = float(bench["real_time"])
    if exact_mean is not None:
        return exact_mean
    if plain is not None:
        return plain
    raise KeyError(f"benchmark '{name}' not found in artifact")


def ratio(path):
    with open(path, encoding="utf-8") as handle:
        artifact = json.load(handle)
    legacy = kernel_time(artifact, LEGACY)
    session = kernel_time(artifact, SESSION)
    if legacy <= 0 or session <= 0:
        raise ValueError(f"{path}: non-positive kernel time")
    return session / legacy


def main(argv):
    if len(argv) not in (3, 4):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    current_path, baseline_path = argv[1], argv[2]
    tolerance = float(argv[3]) if len(argv) == 4 else 0.20

    current = ratio(current_path)
    baseline = ratio(baseline_path)
    limit = baseline * (1.0 + tolerance)
    print(f"session/legacy kernel ratio: current {current:.3f}, "
          f"baseline {baseline:.3f}, limit {limit:.3f} "
          f"(tolerance {tolerance:.0%})")

    if current >= 1.0:
        print("FAIL: the session kernel is no longer faster than the legacy "
              "kernel", file=sys.stderr)
        return 1
    if current > limit:
        print(f"FAIL: session kernel regressed beyond {tolerance:.0%} of the "
              f"baseline advantage", file=sys.stderr)
        return 1
    print("OK: session kernel within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
