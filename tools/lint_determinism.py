#!/usr/bin/env python3
"""Repo-specific determinism linter for the dmfb stack.

The whole stack promises bit-identical estimates and campaign artifacts at
any thread count (per-run RNG streams, shard-order metric merges, run-order
floating-point folds). Generic tools cannot check that contract, so this
linter enforces the three repo invariants that protect it:

  banned-time-source
      No wall-clock or non-deterministic entropy source anywhere in
      src/tools/bench/examples: time(), std::chrono::system_clock,
      std::chrono::high_resolution_clock (may alias system_clock),
      std::random_device, std::rand/srand, gettimeofday, clock_gettime,
      drand48 & friends. std::chrono::steady_clock is fine (monotonic,
      observability only). The obs module measures wall time by design and
      is allowlisted with justifications, never exempted wholesale.

  unordered-in-critical-path
      Every std::unordered_map/std::unordered_set declared in a
      determinism-critical file (the code that feeds a YieldEstimate, a
      campaign artifact, or a golden CSV — see CRITICAL_PATHS) must carry
      an allowlist entry whose justification explains why its iteration
      order cannot leak (lookup-only, or output re-sorted). New hash
      containers in those files therefore force a written argument.

  unordered-iteration
      Range-for or .begin()/.end()/iteration over an identifier declared as
      std::unordered_map/set in the same file is flagged in *every* scanned
      file: hash-order iteration is how nondeterminism escapes into output.
      Membership tests (.contains/.count/.find) are fine.

  fp-accumulate
      In critical files only: `x +=` / `x -=` on an identifier declared
      float/double in the same file. Floating-point accumulation is only
      deterministic across thread counts when the fold order is pinned;
      such folds must live in the documented run-order helpers and carry an
      allowlist justification saying so.

  mixed-rng-version
      In injector-path files only (src/fault/, src/sim/fault_model*): one
      function chunk may draw from the v1 serial generator (`rng.method(`,
      passing `rng` as an argument) OR from a v2 counter stream
      (`stream.method(`, passing `stream`), never both. The v1 and v2
      injection contracts replay draw-for-draw against their own layer
      twins; a function interleaving the two desynchronizes both replays at
      once. Counter-based v2 draws themselves need no allowlist entry —
      only the mix is an error. Chunks are split at column-0 `}` lines, so
      declarations that merely *mention* both types in a parameter list do
      not fire (a parameter name preceded by `&` is not a draw).

Implementation: a libclang AST pass when python3-clang is importable, with
a token/regex fallback (same rule names, same allowlist) so the linter runs
everywhere — CI, the build container, a laptop with nothing installed.
Both passes strip comments and string literals first, so prose about
"system_clock" never fires.

Allowlist (tools/lint_determinism_allow.txt): one entry per line,

    path:rule:substring | justification

`path` is repo-relative, `substring` must occur in the flagged source line,
and the justification is mandatory. Entries that no longer match anything
are an error (stale allowlist lines hide real regressions).

Exit codes: 0 clean, 1 violations (or stale allowlist entries), 2 usage or
malformed allowlist.
"""
from __future__ import annotations

import argparse
import os
import re
import sys

# Directories scanned by default (tests/ may use clocks for timeouts and
# never feeds artifacts; gtest internals also trip the patterns).
SCAN_DIRS = ("src", "tools", "bench", "examples")
SOURCE_SUFFIXES = (".cpp", ".hpp", ".cc", ".hh", ".h")

# Files whose output feeds a YieldEstimate, a campaign artifact, or a golden
# CSV. Hash containers and floating-point accumulation in these files need a
# written justification.
CRITICAL_PATHS = (
    "src/campaign/spec.cpp",
    "src/campaign/spec.hpp",
    "src/campaign/runner.cpp",
    "src/campaign/runner.hpp",
    "src/campaign/grid.cpp",
    "src/sim/session.cpp",
    "src/sim/session.hpp",
    "src/core/design_advisor.cpp",
    "src/core/design_advisor.hpp",
)

BANNED_CALLS = (
    (r"std\s*::\s*random_device", "std::random_device"),
    (r"std\s*::\s*rand\s*\(", "std::rand"),
    (r"\bsrand\s*\(", "srand"),
    (r"std\s*::\s*chrono\s*::\s*system_clock", "std::chrono::system_clock"),
    (r"std\s*::\s*chrono\s*::\s*high_resolution_clock",
     "std::chrono::high_resolution_clock"),
    (r"\bgettimeofday\s*\(", "gettimeofday"),
    (r"\bclock_gettime\s*\(", "clock_gettime"),
    (r"\btime\s*\(\s*(NULL|nullptr|0)?\s*\)", "time()"),
    (r"\b[dlms]rand48\s*\(", "*rand48"),
    (r"\bgetrandom\s*\(", "getrandom"),
)

# Injection draw paths: the files where the v1 (serial Rng) and v2
# (CounterStream) contracts are implemented side by side as *_v2 twins.
INJECTOR_PATHS = ("src/fault/", "src/sim/fault_model")

# A *draw* from each contract: a method call on the conventional local name,
# or the generator passed on as a call argument. `Rng& rng)` / `CounterStream&
# stream)` parameter declarations do not match (the `&` precedes the name).
V1_DRAW = re.compile(r"\brng\s*\.\s*\w+\s*\(|[(,]\s*rng\s*\)")
V2_DRAW = re.compile(r"\bstream\s*\.\s*\w+\s*\(|[(,]\s*stream\s*\)")

UNORDERED_DECL = re.compile(
    r"std\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<")
# Identifier declared as an unordered container on the same (joined) line:
#   std::unordered_map<K, V> name;   const std::unordered_set<T>& name = ...
UNORDERED_NAMED = re.compile(
    r"std\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<[^;{]*?>\s*&?\s*"
    r"(?P<name>[A-Za-z_]\w*)\s*(?:[;={(,)]|$)")
FLOAT_DECL = re.compile(
    r"\b(?:float|double)\b(?:\s+const)?\s+&?\s*(?P<name>[A-Za-z_]\w*)\s*[;={]")


class Finding:
    __slots__ = ("path", "line", "rule", "message", "source")

    def __init__(self, path, line, rule, message, source):
        self.path = path          # repo-relative, forward slashes
        self.line = line          # 1-based
        self.rule = rule
        self.message = message
        self.source = source      # the offending source line, stripped

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blanks comments and string/char literals, preserving line structure.

    Replacement uses spaces so columns keep meaning; newlines inside block
    comments and raw strings survive so line numbers stay true.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif ch == "/" and nxt == "*":
            i += 2
            out.append("  ")
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                i += 2
                out.append("  ")
        elif ch == "R" and nxt == '"':
            # Raw string literal: R"delim( ... )delim"
            match = re.match(r'R"([^(\s]{0,16})\(', text[i:])
            if match is None:
                out.append(ch)
                i += 1
                continue
            closer = ")" + match.group(1) + '"'
            end = text.find(closer, i + match.end())
            end = n if end == -1 else end + len(closer)
            out.append("".join("\n" if c == "\n" else " "
                               for c in text[i:end]))
            i = end
        elif ch in "\"'":
            quote = ch
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out.append("  ")
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            out.append(" ")
            i += 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def is_critical(path):
    return path in CRITICAL_PATHS


def is_injector_path(path):
    return any(path.startswith(prefix) for prefix in INJECTOR_PATHS)


def _mixed_rng_findings(path, lines):
    """mixed-rng-version findings: chunks drawing from both contracts.

    A chunk is a run of lines ending at a column-0 `}` — a function (or
    class) definition at namespace scope in this codebase's style. The
    finding anchors at the line where the *second* contract first appears,
    which is where the mix begins.
    """
    findings = []
    first_v1 = first_v2 = None
    v1_source = v2_source = ""

    def close_chunk():
        nonlocal first_v1, first_v2, v1_source, v2_source
        if first_v1 is not None and first_v2 is not None:
            lineno = max(first_v1, first_v2)
            source = v2_source if first_v2 > first_v1 else v1_source
            findings.append(Finding(
                path, lineno, "mixed-rng-version",
                "v1 serial draws (rng) and v2 counter-stream draws (stream) "
                "mixed in one injector function: each contract replays "
                "draw-for-draw against its layer twin, so interleaving them "
                "desynchronizes both — keep v2 logic in a *_v2 twin",
                source))
        first_v1 = first_v2 = None
        v1_source = v2_source = ""

    for lineno, line in enumerate(lines, start=1):
        if first_v1 is None and V1_DRAW.search(line):
            first_v1 = lineno
            v1_source = line.strip()
        if first_v2 is None and V2_DRAW.search(line):
            first_v2 = lineno
            v2_source = line.strip()
        if line.startswith("}"):
            close_chunk()
    close_chunk()
    return findings


def _unordered_names(lines):
    """Identifiers declared as unordered containers, per file."""
    names = set()
    for line in lines:
        for match in UNORDERED_NAMED.finditer(line):
            names.add(match.group("name"))
    return names


def _float_names(lines):
    names = set()
    for line in lines:
        # Skip parameter-looking contexts crudely: a declaration inside a
        # signature still accumulates in-function, so keep them too.
        for match in FLOAT_DECL.finditer(line):
            names.add(match.group("name"))
    return names


def scan_text(path, text):
    """All findings for one file (pattern pass). `path` is repo-relative."""
    findings = []
    stripped = strip_comments_and_strings(text)
    lines = stripped.split("\n")
    critical = is_critical(path)

    for lineno, line in enumerate(lines, start=1):
        for pattern, label in BANNED_CALLS:
            if re.search(pattern, line):
                findings.append(Finding(
                    path, lineno, "banned-time-source",
                    f"{label} is a non-deterministic source; use the seeded "
                    f"common/rng.hpp streams (or steady_clock inside obs/)",
                    line.strip()))
        if critical and UNORDERED_DECL.search(line):
            findings.append(Finding(
                path, lineno, "unordered-in-critical-path",
                "hash container in a determinism-critical file: justify "
                "(lookup-only / output re-sorted) in the allowlist or use an "
                "ordered container",
                line.strip()))

    if is_injector_path(path):
        findings.extend(_mixed_rng_findings(path, lines))

    unordered = _unordered_names(lines)
    if unordered:
        union = "|".join(sorted(re.escape(name) for name in unordered))
        # `.end()` alone is the find-comparison idiom, not iteration, so only
        # begin-family calls count; the lookbehind keeps `plan->used` (some
        # *other* object's member that shares the name) from matching.
        iteration = re.compile(
            r"(?::\s*(?<![\w.>:])(?P<range>" + union + r")\s*\)"  # for (x : name)
            r"|(?<![\w.>:])(?P<iter>" + union + r")\s*\.\s*(?:begin|cbegin|"
            r"rbegin)\s*\()")
        for lineno, line in enumerate(lines, start=1):
            match = iteration.search(line)
            if match:
                name = match.group("range") or match.group("iter")
                findings.append(Finding(
                    path, lineno, "unordered-iteration",
                    f"iteration over hash-ordered '{name}': order is "
                    f"nondeterministic; sort first or use an ordered "
                    f"container",
                    line.strip()))

    if critical:
        floats = _float_names(lines)
        if floats:
            union = "|".join(sorted(re.escape(name) for name in floats))
            accumulate = re.compile(r"\b(" + union + r")\s*[+-]=")
            for lineno, line in enumerate(lines, start=1):
                match = accumulate.search(line)
                if match:
                    findings.append(Finding(
                        path, lineno, "fp-accumulate",
                        f"floating-point accumulation into "
                        f"'{match.group(1)}' in a determinism-critical "
                        f"file: folds must be run-order pinned and "
                        f"allowlisted with that argument",
                        line.strip()))
    return findings


# -- optional libclang refinement -------------------------------------------

def try_libclang():
    """The clang.cindex module, or None when unavailable."""
    try:
        import clang.cindex  # type: ignore
        # Probe that a library actually loads; Index.create throws otherwise.
        clang.cindex.Index.create()
        return clang.cindex
    except Exception:
        return None


def scan_file_libclang(cindex, path, repo_root):
    """AST-based banned-call scan: resolves through typedefs and usings, so
    `using clock = std::chrono::system_clock` cannot hide a banned source.
    Returns None when parsing fails (caller falls back to patterns)."""
    banned_spellings = {
        "random_device": "std::random_device",
        "system_clock": "std::chrono::system_clock",
        "high_resolution_clock": "std::chrono::high_resolution_clock",
        "rand": "std::rand", "srand": "srand",
        "gettimeofday": "gettimeofday", "clock_gettime": "clock_gettime",
        "time": "time()", "drand48": "*rand48", "lrand48": "*rand48",
        "mrand48": "*rand48", "srand48": "*rand48", "getrandom": "getrandom",
    }
    try:
        index = cindex.Index.create()
        tu = index.parse(os.path.join(repo_root, path),
                         args=["-std=c++20", "-I", os.path.join(repo_root, "src")])
    except Exception:
        return None
    findings = []
    for cursor in tu.cursor.walk_preorder():
        try:
            if cursor.location.file is None:
                continue
            file_rel = os.path.relpath(str(cursor.location.file), repo_root)
            if file_rel.replace(os.sep, "/") != path:
                continue
            if cursor.kind in (cindex.CursorKind.DECL_REF_EXPR,
                               cindex.CursorKind.TYPE_REF,
                               cindex.CursorKind.CALL_EXPR):
                label = banned_spellings.get(cursor.spelling)
                if label:
                    findings.append(Finding(
                        path, cursor.location.line, "banned-time-source",
                        f"{label} is a non-deterministic source; use the "
                        f"seeded common/rng.hpp streams (or steady_clock "
                        f"inside obs/)", cursor.spelling))
        except Exception:
            continue
    return findings


# -- allowlist ---------------------------------------------------------------

class AllowEntry:
    __slots__ = ("path", "rule", "substring", "justification", "lineno",
                 "hits")

    def __init__(self, path, rule, substring, justification, lineno):
        self.path = path
        self.rule = rule
        self.substring = substring
        self.justification = justification
        self.lineno = lineno
        self.hits = 0


def parse_allowlist(path):
    """Entries plus a list of format errors (missing justification, bad
    shape). Lines: `path:rule:substring | justification`; '#' comments."""
    entries, errors = [], []
    if not os.path.exists(path):
        return entries, errors
    with open(path, encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if "|" not in line:
                errors.append(f"{path}:{lineno}: allowlist entry has no "
                              f"'| justification' part")
                continue
            head, justification = line.split("|", 1)
            justification = justification.strip()
            if not justification:
                errors.append(f"{path}:{lineno}: empty justification")
                continue
            parts = head.strip().split(":", 2)
            if len(parts) != 3 or not all(p.strip() for p in parts):
                errors.append(f"{path}:{lineno}: expected "
                              f"'path:rule:substring | justification'")
                continue
            entries.append(AllowEntry(parts[0].strip(), parts[1].strip(),
                                      parts[2].strip(), justification,
                                      lineno))
    return entries, errors


def apply_allowlist(findings, entries):
    """Partitions findings into (kept, suppressed); marks entry hits."""
    kept, suppressed = [], []
    for finding in findings:
        entry_hit = None
        for entry in entries:
            if (entry.path == finding.path and entry.rule == finding.rule
                    and entry.substring in finding.source):
                entry_hit = entry
                break
        if entry_hit is None:
            kept.append(finding)
        else:
            entry_hit.hits += 1
            suppressed.append(finding)
    return kept, suppressed


# -- driver ------------------------------------------------------------------

def collect_files(repo_root, explicit):
    if explicit:
        out = []
        for name in explicit:
            rel = os.path.relpath(os.path.abspath(name), repo_root)
            out.append(rel.replace(os.sep, "/"))
        return out
    files = []
    for scan_dir in SCAN_DIRS:
        base = os.path.join(repo_root, scan_dir)
        for dirpath, _dirnames, filenames in os.walk(base):
            for filename in sorted(filenames):
                if filename.endswith(SOURCE_SUFFIXES):
                    rel = os.path.relpath(os.path.join(dirpath, filename),
                                          repo_root)
                    files.append(rel.replace(os.sep, "/"))
    return sorted(files)


def lint(repo_root, files, allowlist_path, use_libclang=True):
    """Returns (kept_findings, suppressed_count, errors)."""
    entries, errors = parse_allowlist(allowlist_path)
    if errors:
        return [], 0, errors
    cindex = try_libclang() if use_libclang else None
    findings = []
    for path in files:
        full = os.path.join(repo_root, path)
        try:
            with open(full, encoding="utf-8", errors="replace") as handle:
                text = handle.read()
        except OSError as error:
            errors.append(f"{path}: unreadable ({error})")
            continue
        file_findings = scan_text(path, text)
        if cindex is not None:
            ast = scan_file_libclang(cindex, path, repo_root)
            if ast is not None:
                # AST pass supersedes the pattern pass for banned calls
                # only; container/fold rules stay pattern-based.
                file_findings = (
                    [f for f in file_findings
                     if f.rule != "banned-time-source"] + ast)
        findings.extend(file_findings)
    if errors:
        return [], 0, errors
    kept, suppressed = apply_allowlist(findings, entries)
    stale = [entry for entry in entries if entry.hits == 0]
    for entry in stale:
        kept.append(Finding(
            allowlist_path.replace(os.sep, "/"), entry.lineno,
            "stale-allowlist",
            f"entry '{entry.path}:{entry.rule}:{entry.substring}' matched "
            f"nothing — the code it justified is gone; delete the entry",
            entry.substring))
    return kept, len(suppressed), []


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="dmfb determinism linter (see docs/STATIC_ANALYSIS.md)")
    parser.add_argument("files", nargs="*",
                        help="files to lint (default: src tools bench "
                             "examples under --root)")
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--allowlist", default=None,
                        help="allowlist file (default: "
                             "tools/lint_determinism_allow.txt)")
    parser.add_argument("--no-libclang", action="store_true",
                        help="force the pattern fallback even when libclang "
                             "is importable")
    args = parser.parse_args(argv)

    repo_root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    allowlist = args.allowlist or os.path.join(
        repo_root, "tools", "lint_determinism_allow.txt")

    files = collect_files(repo_root, args.files)
    kept, suppressed, errors = lint(repo_root, files, allowlist,
                                    use_libclang=not args.no_libclang)
    for error in errors:
        print(f"lint_determinism: {error}", file=sys.stderr)
    if errors:
        return 2
    for finding in sorted(kept, key=lambda f: (f.path, f.line, f.rule)):
        print(finding)
    mode = "libclang" if (not args.no_libclang and try_libclang()) \
        else "pattern"
    print(f"lint_determinism: {len(files)} files, {len(kept)} finding(s), "
          f"{suppressed} allowlisted ({mode} mode)", file=sys.stderr)
    return 1 if kept else 0


if __name__ == "__main__":
    sys.exit(main())
