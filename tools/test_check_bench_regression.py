#!/usr/bin/env python3
"""Tests for tools/check_bench_regression.py.

unittest.TestCase-based so both `python3 -m pytest tools/` and
`python3 -m unittest discover -s tools` run it. Covers the contract the
CHANGES log promises: missing/NaN metrics surface as one-line FAIL
diagnostics (exit 1, no traceback), the gate is two-sided (regression AND
silent improvement fail), and `inf` disables the improvement side only.
"""
import contextlib
import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import check_bench_regression as gate  # noqa: E402


def artifact(session_ns=None, legacy_ns=None, extra=()):
    benchmarks = []
    if legacy_ns is not None:
        benchmarks.append({"name": gate.LEGACY, "run_name": gate.LEGACY,
                           "real_time": legacy_ns})
    if session_ns is not None:
        benchmarks.append({"name": gate.SESSION, "run_name": gate.SESSION,
                           "real_time": session_ns})
    benchmarks.extend(extra)
    return {"benchmarks": benchmarks}


class GateHarness(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, name, payload):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w", encoding="utf-8") as handle:
            if isinstance(payload, str):
                handle.write(payload)
            else:
                json.dump(payload, handle)
        return path

    def run_gate(self, current, baseline, *args):
        """Returns (exit_code, stdout, stderr); payloads may be dict/str."""
        current_path = self.write("current.json", current)
        baseline_path = self.write("baseline.json", baseline)
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
            code = gate.main(["check_bench_regression.py", current_path,
                              baseline_path, *args])
        return code, out.getvalue(), err.getvalue()


class MissingMetricTest(GateHarness):
    def test_missing_session_kernel_is_a_fail_line(self):
        code, _out, err = self.run_gate(
            artifact(legacy_ns=100.0), artifact(50.0, 100.0))
        self.assertEqual(code, 1)
        self.assertIn("FAIL:", err)
        self.assertIn(gate.SESSION, err)
        self.assertIn("not found", err)

    def test_missing_legacy_in_baseline_is_a_fail_line(self):
        code, _out, err = self.run_gate(
            artifact(50.0, 100.0), artifact(session_ns=50.0))
        self.assertEqual(code, 1)
        self.assertIn("FAIL:", err)

    def test_nan_real_time_is_a_fail_line(self):
        code, _out, err = self.run_gate(
            artifact(float("nan"), 100.0), artifact(50.0, 100.0))
        self.assertEqual(code, 1)
        self.assertIn("NaN", err)

    def test_non_positive_time_is_a_fail_line(self):
        code, _out, err = self.run_gate(
            artifact(0.0, 100.0), artifact(50.0, 100.0))
        self.assertEqual(code, 1)
        self.assertIn("non-positive", err)

    def test_unreadable_artifact_is_a_fail_line(self):
        baseline = self.write("baseline.json", artifact(50.0, 100.0))
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
            code = gate.main(["x", os.path.join(self.tmp.name, "absent.json"),
                              baseline])
        self.assertEqual(code, 1)
        self.assertIn("FAIL:", err.getvalue())

    def test_invalid_json_is_a_fail_line(self):
        code, _out, err = self.run_gate("{not json", artifact(50.0, 100.0))
        self.assertEqual(code, 1)
        self.assertIn("not valid JSON", err)


class TwoSidedGateTest(GateHarness):
    # Baseline ratio: 50/100 = 0.5. Tolerance 0.20 -> limit 0.6, floor 0.4.

    def test_within_budget_passes(self):
        code, out, _err = self.run_gate(
            artifact(55.0, 100.0), artifact(50.0, 100.0), "0.20")
        self.assertEqual(code, 0)
        self.assertIn("OK", out)

    def test_regression_beyond_tolerance_fails(self):
        code, _out, err = self.run_gate(
            artifact(65.0, 100.0), artifact(50.0, 100.0), "0.20")
        self.assertEqual(code, 1)
        self.assertIn("regressed", err)

    def test_session_slower_than_legacy_fails_outright(self):
        code, _out, err = self.run_gate(
            artifact(120.0, 100.0), artifact(50.0, 100.0), "2.0")
        self.assertEqual(code, 1)
        self.assertIn("no longer faster", err)

    def test_silent_improvement_beyond_tolerance_fails(self):
        code, _out, err = self.run_gate(
            artifact(30.0, 100.0), artifact(50.0, 100.0), "0.20")
        self.assertEqual(code, 1)
        self.assertIn("refresh bench/baselines", err)

    def test_improvement_within_explicit_tolerance_passes(self):
        code, _out, _err = self.run_gate(
            artifact(30.0, 100.0), artifact(50.0, 100.0), "0.20", "0.50")
        self.assertEqual(code, 0)

    def test_inf_disables_the_improvement_side_only(self):
        code, _out, _err = self.run_gate(
            artifact(5.0, 100.0), artifact(50.0, 100.0), "0.20", "inf")
        self.assertEqual(code, 0)
        # ... but the regression side still trips with inf improvement.
        code, _out, err = self.run_gate(
            artifact(65.0, 100.0), artifact(50.0, 100.0), "0.20", "inf")
        self.assertEqual(code, 1)
        self.assertIn("regressed", err)

    def test_nan_improvement_tolerance_is_usage_error(self):
        code, _out, err = self.run_gate(
            artifact(50.0, 100.0), artifact(50.0, 100.0), "0.20", "nan")
        self.assertEqual(code, 2)
        self.assertIn("non-negative", err)

    def test_infinite_main_tolerance_is_usage_error(self):
        # inf is only meaningful for the improvement side; a vacuous main
        # tolerance would silently pass any regression.
        code, _out, err = self.run_gate(
            artifact(50.0, 100.0), artifact(50.0, 100.0), "inf")
        self.assertEqual(code, 2)
        self.assertIn("finite", err)


class RatioTableTest(GateHarness):
    def test_new_kernel_shows_na_and_never_gates(self):
        extra = [{"name": "BM_New", "run_name": "BM_New", "real_time": 10.0}]
        code, out, _err = self.run_gate(
            artifact(50.0, 100.0, extra=extra), artifact(50.0, 100.0))
        self.assertEqual(code, 0)
        self.assertIn("BM_New", out)
        self.assertIn("n/a", out)

    def test_v2_kernel_is_denominated_against_its_v1_counterpart(self):
        # InjectV2_Dtmb16Sparse (100 ns) vs Dtmb16Sparse (400 ns): the row
        # must read 0.250 against the counterpart, not 100/legacy.
        extra = [
            {"name": "BM_McYieldRun_Dtmb16Sparse",
             "run_name": "BM_McYieldRun_Dtmb16Sparse", "real_time": 400.0},
            {"name": "BM_McYieldRun_InjectV2_Dtmb16Sparse",
             "run_name": "BM_McYieldRun_InjectV2_Dtmb16Sparse",
             "real_time": 100.0},
        ]
        code, out, _err = self.run_gate(
            artifact(50.0, 100.0, extra=extra),
            artifact(50.0, 100.0, extra=extra))
        self.assertEqual(code, 0)
        row = next(line for line in out.splitlines()
                   if line.startswith("BM_McYieldRun_InjectV2_Dtmb16Sparse"))
        self.assertIn("Dtmb16Sparse", row.split()[1])
        self.assertIn("0.250", row)
        self.assertNotIn("n/a", row)

    def test_v2_kernel_missing_from_baseline_falls_back_to_parity(self):
        counterpart = [
            {"name": "BM_McYieldRun_Dtmb16Sparse",
             "run_name": "BM_McYieldRun_Dtmb16Sparse", "real_time": 400.0},
        ]
        v2 = counterpart + [
            {"name": "BM_McYieldRun_InjectV2_Dtmb16Sparse",
             "run_name": "BM_McYieldRun_InjectV2_Dtmb16Sparse",
             "real_time": 100.0},
        ]
        code, out, _err = self.run_gate(
            artifact(50.0, 100.0, extra=v2),
            artifact(50.0, 100.0, extra=counterpart))
        self.assertEqual(code, 0)
        row = next(line for line in out.splitlines()
                   if line.startswith("BM_McYieldRun_InjectV2_Dtmb16Sparse"))
        self.assertIn("1.000", row)   # parity baseline, not n/a
        self.assertIn("-75.0%", row)  # delta = the measured v2 speedup

    def test_mean_aggregate_preferred_over_plain_entry(self):
        current = artifact(60.0, 100.0)
        current["benchmarks"].append(
            {"name": gate.SESSION, "run_name": gate.SESSION,
             "aggregate_name": "mean", "real_time": 50.0})
        code, _out, _err = self.run_gate(
            current, artifact(50.0, 100.0), "0.05")
        self.assertEqual(code, 0)  # mean (50) gates, not the plain 60


if __name__ == "__main__":
    unittest.main()
