// dmfb_campaign: run a declarative scenario sweep over the Monte-Carlo
// yield stack and emit console / markdown / CSV / JSON-lines artifacts.
//
// Usage:
//   dmfb_campaign <spec-file | builtin:NAME> [options]
//   dmfb_campaign --list
//
// Options:
//   --threads N   override the spec's thread budget (0 = hardware)
//   --runs N      override the spec's runs-per-point
//   --seed S      override the spec's RNG seed (decimal or 0x-hex)
//   --out DIR     directory for CSV/JSON-lines artifacts (default ".");
//                 --out FORMAT:DIR (csv/jsonl) narrows the file artifacts
//                 to that one format — an unknown format is a hard error,
//                 not a directory name
//   --markdown    render the console table as markdown
//   --print-spec  echo the normalised spec and exit (no simulation)
//   --metrics P   write an obs metrics snapshot to P (JSON lines) plus a
//                 markdown summary next to it (.jsonl -> .md)
//   --trace P     record Chrome trace-event JSON (Perfetto-loadable) to P
//   --store DIR   durable result store (serve::ResultStore): points already
//                 stored load instead of recomputing, fresh points persist
//                 — kill the process mid-campaign, rerun with the same
//                 --store, and only uncomputed points execute, with
//                 artifacts byte-identical to an uninterrupted run
//
// File artifacts land at <out>/<name>.csv and <out>/<name>.jsonl when the
// spec's sink list requests them. Results are bit-identical for every
// --threads value — with or without --metrics/--trace, which observe the
// run but never steer it.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/builtin.hpp"
#include "campaign/runner.hpp"
#include "campaign/sink.hpp"
#include "campaign/spec.hpp"
#include "common/parse.hpp"
#include "core/version.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "obs/trace.hpp"
#include "serve/result_store.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " <spec-file | builtin:NAME> [options]\n"
      << "       " << argv0 << " --list\n"
      << "options:\n"
      << "  --threads N   override thread budget (0 = hardware concurrency)\n"
      << "  --runs N      override Monte-Carlo runs per grid point\n"
      << "  --seed S      override RNG seed (decimal or 0x-hex)\n"
      << "  --out DIR     artifact output directory (default: .)\n"
      << "  --out FMT:DIR emit only FMT file artifacts (csv or jsonl)\n"
      << "  --markdown    print the console table as markdown\n"
      << "  --print-spec  echo the normalised spec and exit\n"
      << "  --metrics P   write metrics JSON-lines to P (+ .md summary)\n"
      << "  --trace P     write Chrome trace-event JSON to P\n"
      << "  --store DIR   durable result store for checkpoint/resume\n";
  return 2;
}

std::string read_spec_source(const std::string& target, std::string& error) {
  constexpr std::string_view kBuiltinPrefix = "builtin:";
  if (target.starts_with(kBuiltinPrefix)) {
    const std::string_view name =
        std::string_view(target).substr(kBuiltinPrefix.size());
    const std::string_view text = dmfb::campaign::builtin_campaign(name);
    if (text.empty()) {
      error = "unknown builtin campaign '" + std::string(name) +
              "' (try --list)";
      return {};
    }
    return std::string(text);
  }
  std::ifstream file(target);
  if (!file.is_open()) {
    error = "cannot open spec file '" + target + "'";
    return {};
  }
  std::ostringstream text;
  text << file.rdbuf();
  return text.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dmfb;
  using campaign::SinkKind;

  std::string target;
  campaign::OutArgument out{std::nullopt, "."};
  std::optional<std::int64_t> threads_override;
  std::optional<std::int64_t> runs_override;
  std::optional<std::uint64_t> seed_override;
  std::string metrics_path;
  std::string trace_path;
  std::string store_dir;
  bool markdown = false;
  bool print_spec = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    const auto next_value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    // --metrics/--trace/--store accept both "--flag PATH" and "--flag=PATH".
    std::string inline_value;
    if (arg.starts_with("--metrics=") || arg.starts_with("--trace=") ||
        arg.starts_with("--store=")) {
      const auto equals = arg.find('=');
      inline_value = arg.substr(equals + 1);
      arg.resize(equals);
    }
    const auto path_value = [&]() -> std::string {
      if (!inline_value.empty()) return inline_value;
      const char* value = next_value();
      return value ? std::string(value) : std::string();
    };
    if (arg == "--list") {
      std::cout << "builtin campaigns:\n";
      for (const std::string_view name : campaign::builtin_campaign_names()) {
        std::cout << "  builtin:" << name << '\n';
      }
      return 0;
    } else if (arg == "--markdown") {
      markdown = true;
    } else if (arg == "--print-spec") {
      print_spec = true;
    } else if (arg == "--threads") {
      const char* value = next_value();
      threads_override =
          value ? common::parse_int_in(value, 0, 4096) : std::nullopt;
      if (!threads_override) {
        std::cerr << argv[0] << ": --threads needs an integer in [0, 4096]\n";
        return 2;
      }
    } else if (arg == "--runs") {
      const char* value = next_value();
      runs_override =
          value ? common::parse_int_in(value, 1, 100'000'000) : std::nullopt;
      if (!runs_override) {
        std::cerr << argv[0] << ": --runs needs an integer in [1, 1e8]\n";
        return 2;
      }
    } else if (arg == "--seed") {
      const char* value = next_value();
      seed_override = value ? common::parse_uint64(value) : std::nullopt;
      if (!seed_override) {
        std::cerr << argv[0] << ": --seed needs a uint64 (decimal or 0x-hex)\n";
        return 2;
      }
    } else if (arg == "--metrics") {
      metrics_path = path_value();
      if (metrics_path.empty()) {
        std::cerr << argv[0] << ": --metrics needs an output path\n";
        return 2;
      }
    } else if (arg == "--trace") {
      trace_path = path_value();
      if (trace_path.empty()) {
        std::cerr << argv[0] << ": --trace needs an output path\n";
        return 2;
      }
    } else if (arg == "--store") {
      store_dir = path_value();
      if (store_dir.empty()) {
        std::cerr << argv[0] << ": --store needs a directory\n";
        return 2;
      }
    } else if (arg == "--out") {
      const char* value = next_value();
      if (!value) {
        std::cerr << argv[0] << ": --out needs a directory\n";
        return 2;
      }
      // Strict parse, like the numeric options: an unknown FORMAT: prefix
      // is a diagnostic and a nonzero exit, never a silent directory.
      std::string out_error;
      const auto parsed_out = campaign::parse_out_argument(value, out_error);
      if (!parsed_out) {
        std::cerr << argv[0] << ": " << out_error << '\n';
        return 2;
      }
      out = *parsed_out;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << argv[0] << ": unknown option '" << arg << "'\n";
      return usage(argv[0]);
    } else if (target.empty()) {
      target = arg;
    } else {
      std::cerr << argv[0] << ": more than one spec given\n";
      return usage(argv[0]);
    }
  }
  if (target.empty()) return usage(argv[0]);

  std::string error;
  const std::string source = read_spec_source(target, error);
  if (!error.empty()) {
    std::cerr << argv[0] << ": " << error << '\n';
    return 2;
  }

  campaign::ParseResult parsed = campaign::parse_campaign_spec(source);
  if (!parsed.ok()) {
    std::cerr << argv[0] << ": invalid campaign spec '" << target << "':\n"
              << parsed.error_text();
    return 2;
  }
  campaign::CampaignSpec spec = std::move(*parsed.spec);
  if (threads_override) {
    spec.threads = static_cast<std::int32_t>(*threads_override);
  }
  if (runs_override) spec.runs = static_cast<std::int32_t>(*runs_override);
  if (seed_override) spec.seed = *seed_override;
  if (out.format) {
    // --out FORMAT:DIR pins the file artifacts to exactly that format
    // (whether or not the spec listed it); console sinks are unaffected.
    std::erase_if(spec.sinks, [](SinkKind kind) {
      return kind == SinkKind::kCsv || kind == SinkKind::kJsonl;
    });
    spec.sinks.push_back(*out.format);
  }

  if (print_spec) {
    std::cout << campaign::to_spec_text(spec);
    return 0;
  }

  campaign::CampaignRunner runner(std::move(spec));
  const campaign::CampaignSpec& active = runner.spec();

  std::shared_ptr<serve::ResultStore> store;
  if (!store_dir.empty()) {
    try {
      store = std::make_shared<serve::ResultStore>(store_dir);
    } catch (const std::exception& ex) {
      std::cerr << argv[0] << ": cannot open result store '" << store_dir
                << "': " << ex.what() << '\n';
      return 1;
    }
    runner.set_result_cache(store);
  }

  std::vector<std::unique_ptr<campaign::ArtifactSink>> file_sinks;
  std::unique_ptr<campaign::ConsoleSink> console_text;
  std::unique_ptr<campaign::ConsoleSink> console_markdown;
  std::vector<std::string> artifact_paths;
  for (const SinkKind kind : active.sinks) {
    switch (kind) {
      case SinkKind::kConsole:
      case SinkKind::kMarkdown: {
        // --markdown upgrades the plain console sink; one sink per style,
        // so `sink = console, markdown` prints both renderings.
        auto& console =
            markdown || kind == SinkKind::kMarkdown ? console_markdown
                                                    : console_text;
        if (!console) {
          console = std::make_unique<campaign::ConsoleSink>(
              std::cout, markdown || kind == SinkKind::kMarkdown
                             ? campaign::ConsoleSink::Style::kMarkdown
                             : campaign::ConsoleSink::Style::kText);
          runner.add_sink(*console);
        }
        break;
      }
      case SinkKind::kCsv:
      case SinkKind::kJsonl: {
        std::error_code ec;
        std::filesystem::create_directories(out.dir, ec);  // best effort
        const std::string path = out.dir + "/" + active.name +
                                 (kind == SinkKind::kCsv ? ".csv" : ".jsonl");
        auto sink = campaign::make_file_sink(kind, path, error);
        if (!sink) {
          std::cerr << argv[0] << ": " << error << '\n';
          return 1;
        }
        artifact_paths.push_back(path);
        runner.add_sink(*file_sinks.emplace_back(std::move(sink)));
        break;
      }
    }
  }

  // Observability is opt-in and free when absent: the registry/recorder
  // are only constructed (and installed) when the flags ask for them, and
  // they observe the run without steering it — artifacts stay bit-identical.
  std::unique_ptr<obs::Registry> registry;
  std::unique_ptr<obs::TraceRecorder> recorder;
  if (!metrics_path.empty()) {
    registry = std::make_unique<obs::Registry>();
    registry->install();
  }
  if (!trace_path.empty()) {
    recorder = std::make_unique<obs::TraceRecorder>();
    recorder->install();
  }

  try {
    runner.run();
  } catch (const std::exception& ex) {
    std::cerr << argv[0] << ": campaign '" << active.name
              << "' failed: " << ex.what() << '\n';
    return 1;
  }

  if (registry) {
    registry->uninstall();
    const obs::MetricsSink metrics_sink(metrics_path);
    if (!metrics_sink.write(registry->snapshot(), &error)) {
      std::cerr << argv[0] << ": " << error << '\n';
      return 1;
    }
    std::cerr << "metrics: " << metrics_sink.jsonl_path() << '\n'
              << "metrics: " << metrics_sink.markdown_path() << '\n';
  }
  if (recorder) {
    recorder->uninstall();
    std::ofstream trace_file(trace_path, std::ios::binary | std::ios::trunc);
    recorder->write(trace_file);
    trace_file.flush();
    if (!trace_file) {
      std::cerr << argv[0] << ": cannot write " << trace_path << '\n';
      return 1;
    }
    std::cerr << "trace: " << trace_path;
    if (recorder->dropped_events() > 0) {
      std::cerr << " (" << recorder->dropped_events()
                << " events dropped by the per-thread buffer cap)";
    }
    std::cerr << '\n';
  }

  std::cerr << "campaign '" << active.name << "': " << runner.stats().grid_points
            << " grid points, " << runner.stats().unique_points << " unique ("
            << runner.stats().cache_hits() << " deduped), dmfb "
            << kVersionString << '\n';
  if (store) {
    const serve::ResultStore::Stats store_stats = store->stats();
    std::cerr << "store '" << store_dir << "': " << store_stats.hits
              << " hits, " << store_stats.writes << " writes, "
              << store_stats.corrupt_dropped << " corrupt dropped\n";
  }
  for (const std::string& path : artifact_paths) {
    std::cerr << "artifact: " << path << '\n';
  }
  return 0;
}
