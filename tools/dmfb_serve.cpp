// dmfb_serve: long-lived yield-estimation daemon. Reads one JSON query
// per line on stdin, computes yield estimates on a pinned worker pool over
// shared sim::Sessions, and streams one JSON answer per line to stdout in
// submission order. See docs/SERVING.md for the wire protocol.
//
// Usage:
//   dmfb_serve [options] < queries.jsonl > answers.jsonl
//
// Options:
//   --threads N      worker threads (0 = hardware concurrency; default 1)
//   --queue N        bounded work-queue depth (default 256)
//   --cache N        per-session in-memory cache bound (completed entries)
//   --pin            pin worker i to CPU i mod hardware_concurrency
//   --store DIR      durable result store shared with dmfb_campaign:
//                    previously answered queries load instead of
//                    recomputing, and survive daemon restarts
//   --stats-json P   on exit, write a one-line JSON stats summary to P
//                    (also always printed to stderr)
//
// Shutdown: EOF on stdin drains naturally. SIGTERM/SIGINT stop the reader
// at the next line boundary; every query already accepted is still
// computed and answered before exit. Exit status is 0 after a clean drain,
// 1 on setup failure (bad store directory), 2 on bad usage.
#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "common/parse.hpp"
#include "core/version.hpp"
#include "serve/result_store.hpp"
#include "serve/server.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options] < queries.jsonl > answers.jsonl\n"
      << "options:\n"
      << "  --threads N    worker threads (0 = hardware; default 1)\n"
      << "  --queue N      bounded work-queue depth (default 256)\n"
      << "  --cache N      per-session cache bound (completed entries)\n"
      << "  --pin          pin workers to CPUs (best effort)\n"
      << "  --store DIR    durable result store (shared with dmfb_campaign)\n"
      << "  --stats-json P write exit stats as one JSON line to P\n";
  return 2;
}

// The signal handler needs a stable address before any signal can arrive;
// the server itself is built in main after flag parsing.
dmfb::serve::Server* g_server = nullptr;

extern "C" void handle_drain_signal(int) {
  if (g_server != nullptr) g_server->request_drain();
}

std::string stats_json(const dmfb::sim::Session::Stats& stats,
                       std::uint64_t answered) {
  std::string out = "{\"answered\": " + std::to_string(answered);
  out += ", \"queries\": " + std::to_string(stats.queries);
  out += ", \"computed\": " + std::to_string(stats.computed);
  out += ", \"store_hits\": " + std::to_string(stats.store_hits);
  out += ", \"cache_hits\": " + std::to_string(stats.cache_hits());
  out += ", \"evictions\": " + std::to_string(stats.evictions);
  out += "}";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dmfb;

  serve::ServerOptions options;
  std::string store_dir;
  std::string stats_path;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    const auto next_value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    // Path flags accept both "--flag PATH" and "--flag=PATH", matching
    // dmfb_campaign.
    std::string inline_value;
    if (arg.starts_with("--store=") || arg.starts_with("--stats-json=")) {
      const auto equals = arg.find('=');
      inline_value = arg.substr(equals + 1);
      arg.resize(equals);
    }
    const auto path_value = [&]() -> std::string {
      if (!inline_value.empty()) return inline_value;
      const char* value = next_value();
      return value ? std::string(value) : std::string();
    };
    if (arg == "--threads") {
      const char* value = next_value();
      const auto parsed =
          value ? common::parse_int_in(value, 0, 4096) : std::nullopt;
      if (!parsed) {
        std::cerr << argv[0] << ": --threads needs an integer in [0, 4096]\n";
        return 2;
      }
      options.threads = static_cast<std::int32_t>(*parsed);
    } else if (arg == "--queue") {
      const char* value = next_value();
      const auto parsed =
          value ? common::parse_int_in(value, 1, 1 << 20) : std::nullopt;
      if (!parsed) {
        std::cerr << argv[0] << ": --queue needs an integer in [1, 2^20]\n";
        return 2;
      }
      options.queue_capacity = static_cast<std::size_t>(*parsed);
    } else if (arg == "--cache") {
      const char* value = next_value();
      const auto parsed =
          value ? common::parse_int_in(value, 1, 1 << 28) : std::nullopt;
      if (!parsed) {
        std::cerr << argv[0] << ": --cache needs an integer in [1, 2^28]\n";
        return 2;
      }
      options.cache_capacity = static_cast<std::size_t>(*parsed);
    } else if (arg == "--pin") {
      options.pin_workers = true;
    } else if (arg == "--store") {
      store_dir = path_value();
      if (store_dir.empty()) {
        std::cerr << argv[0] << ": --store needs a directory\n";
        return 2;
      }
    } else if (arg == "--stats-json") {
      stats_path = path_value();
      if (stats_path.empty()) {
        std::cerr << argv[0] << ": --stats-json needs an output path\n";
        return 2;
      }
    } else {
      std::cerr << argv[0] << ": unknown option '" << arg << "'\n";
      return usage(argv[0]);
    }
  }

  std::shared_ptr<serve::ResultStore> store;
  if (!store_dir.empty()) {
    try {
      store = std::make_shared<serve::ResultStore>(store_dir);
    } catch (const std::exception& ex) {
      std::cerr << argv[0] << ": cannot open result store '" << store_dir
                << "': " << ex.what() << '\n';
      return 1;
    }
    options.store = store;
  }

  serve::Server server(std::move(options));
  g_server = &server;
  std::signal(SIGTERM, handle_drain_signal);
  std::signal(SIGINT, handle_drain_signal);

  std::cerr << "dmfb_serve " << kVersionString << ": serving on stdio\n";
  const std::uint64_t answered = server.serve(std::cin, std::cout);

  const sim::Session::Stats stats = server.session_stats();
  const std::string summary = stats_json(stats, answered);
  std::cerr << "dmfb_serve: " << summary << '\n';
  if (store) {
    const serve::ResultStore::Stats ss = store->stats();
    std::cerr << "store '" << store_dir << "': " << ss.hits << " hits, "
              << ss.misses << " misses, " << ss.writes << " writes, "
              << ss.corrupt_dropped << " corrupt dropped\n";
  }
  if (!stats_path.empty()) {
    std::ofstream stats_file(stats_path, std::ios::trunc);
    stats_file << summary << '\n';
    stats_file.flush();
    if (!stats_file) {
      std::cerr << argv[0] << ": cannot write " << stats_path << '\n';
      return 1;
    }
  }
  return 0;
}
