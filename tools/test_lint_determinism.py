#!/usr/bin/env python3
"""Tests for tools/lint_determinism.py.

unittest.TestCase-based so both runners work:

    python3 -m pytest tools/ -q          # CI
    python3 -m unittest discover -s tools -p 'test_*.py'   # no-pytest boxes

The suite covers every rule (fires / does not fire), comment and string
stripping, the allowlist lifecycle (suppression, mandatory justification,
stale-entry failure), the CLI exit codes, and — as an integration check —
that the real repository passes with the checked-in allowlist.
"""
import os
import shutil
import subprocess
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import lint_determinism as lint  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CRITICAL = "src/sim/session.cpp"  # any member of lint.CRITICAL_PATHS


def rules_of(findings):
    return sorted({finding.rule for finding in findings})


class StripTest(unittest.TestCase):
    def test_line_comments_blanked(self):
        out = lint.strip_comments_and_strings("int a; // std::rand()\nint b;")
        self.assertNotIn("rand", out)
        self.assertEqual(out.count("\n"), 1)

    def test_block_comments_keep_line_structure(self):
        text = "a /* std::random_device\n spans lines */ b\n"
        out = lint.strip_comments_and_strings(text)
        self.assertNotIn("random_device", out)
        self.assertEqual(out.count("\n"), text.count("\n"))

    def test_string_literals_blanked(self):
        out = lint.strip_comments_and_strings('call("std::rand()");')
        self.assertNotIn("rand", out)

    def test_raw_strings_blanked(self):
        out = lint.strip_comments_and_strings('x = R"js({"t":"time()"})js";')
        self.assertNotIn("time()", out)

    def test_code_survives(self):
        out = lint.strip_comments_and_strings("std::rand();  // seed\n")
        self.assertIn("std::rand()", out)


class BannedTimeSourceTest(unittest.TestCase):
    def check(self, snippet, path="src/yield/x.cpp"):
        return lint.scan_text(path, snippet)

    def test_random_device_fires(self):
        findings = self.check("std::random_device rd;\n")
        self.assertEqual(rules_of(findings), ["banned-time-source"])

    def test_system_clock_fires(self):
        findings = self.check("auto t = std::chrono::system_clock::now();\n")
        self.assertEqual(rules_of(findings), ["banned-time-source"])

    def test_high_resolution_clock_fires(self):
        findings = self.check(
            "using C = std::chrono::high_resolution_clock;\n")
        self.assertEqual(rules_of(findings), ["banned-time-source"])

    def test_time_call_fires(self):
        for call in ("time(NULL)", "time(nullptr)", "time(0)"):
            findings = self.check(f"auto t = {call};\n")
            self.assertEqual(rules_of(findings), ["banned-time-source"], call)

    def test_srand_and_rand_fire(self):
        findings = self.check("srand(42); int x = std::rand();\n")
        self.assertEqual(len(findings), 2)

    def test_steady_clock_is_fine(self):
        findings = self.check("auto t = std::chrono::steady_clock::now();\n")
        self.assertEqual(findings, [])

    def test_runtime_identifier_is_fine(self):
        # `time` as a substring of an identifier must not fire.
        findings = self.check("double run_time(int x);\ncompletion_time();\n")
        self.assertEqual(findings, [])

    def test_comment_mention_is_fine(self):
        findings = self.check("// never std::random_device here\nint a;\n")
        self.assertEqual(findings, [])


class UnorderedRulesTest(unittest.TestCase):
    def test_declaration_in_critical_file_fires(self):
        findings = lint.scan_text(
            CRITICAL, "std::unordered_map<std::string, int> cache;\n")
        self.assertIn("unordered-in-critical-path", rules_of(findings))

    def test_declaration_in_ordinary_file_is_fine(self):
        findings = lint.scan_text(
            "src/io/x.cpp", "std::unordered_map<int, int> lookup;\n")
        self.assertEqual(findings, [])

    def test_range_for_iteration_fires_anywhere(self):
        snippet = ("std::unordered_set<int> seen;\n"
                   "for (const int v : seen) use(v);\n")
        findings = lint.scan_text("src/io/x.cpp", snippet)
        self.assertEqual(rules_of(findings), ["unordered-iteration"])
        self.assertEqual(findings[0].line, 2)

    def test_begin_iteration_fires(self):
        snippet = ("std::unordered_map<int, int> m;\n"
                   "auto it = m.begin();\n")
        findings = lint.scan_text("src/io/x.cpp", snippet)
        self.assertEqual(rules_of(findings), ["unordered-iteration"])

    def test_find_and_end_comparison_is_fine(self):
        snippet = ("std::unordered_map<int, int> m;\n"
                   "if (m.find(k) != m.end()) return m.count(k);\n")
        self.assertEqual(lint.scan_text("src/io/x.cpp", snippet), [])

    def test_other_objects_member_is_fine(self):
        # plan->used / other.used share the name but not the container.
        snippet = ("std::unordered_set<int> used;\n"
                   "for (int v : plan->used) use(v);\n"
                   "copy(other.used.begin(), other.used.end());\n")
        self.assertEqual(lint.scan_text("src/io/x.cpp", snippet), [])


class FpAccumulateTest(unittest.TestCase):
    def test_double_accumulation_in_critical_file_fires(self):
        snippet = "double total = 0.0;\nfor (double v : xs) total += v;\n"
        findings = lint.scan_text(CRITICAL, snippet)
        self.assertEqual(rules_of(findings), ["fp-accumulate"])
        self.assertEqual(findings[0].line, 2)

    def test_minus_equals_fires(self):
        snippet = "double debt = 0.0;\ndebt -= payment;\n"
        findings = lint.scan_text(CRITICAL, snippet)
        self.assertEqual(rules_of(findings), ["fp-accumulate"])

    def test_integer_accumulation_is_fine(self):
        snippet = "std::int64_t runs = 0;\nruns += chunk;\n"
        self.assertEqual(lint.scan_text(CRITICAL, snippet), [])

    def test_ordinary_file_is_fine(self):
        snippet = "double total = 0.0;\ntotal += v;\n"
        self.assertEqual(lint.scan_text("src/yield/x.cpp", snippet), [])


class MixedRngVersionTest(unittest.TestCase):
    INJECTOR = "src/fault/injector.cpp"

    def test_v1_only_function_is_fine(self):
        snippet = ("void inject(HexArray& a, Rng& rng) {\n"
                   "  if (rng.uniform01() < p) mark(a, rng);\n"
                   "}\n")
        self.assertEqual(lint.scan_text(self.INJECTOR, snippet), [])

    def test_v2_only_function_needs_no_allowlist(self):
        snippet = ("void inject_v2(HexArray& a, CounterStream& stream) {\n"
                   "  skip_sample_bernoulli(stream, n, p, on_fault);\n"
                   "  stream.skip(1);\n"
                   "}\n")
        self.assertEqual(lint.scan_text(self.INJECTOR, snippet), [])

    def test_mixing_contracts_in_one_function_fires_line_anchored(self):
        snippet = ("void inject(HexArray& a, Rng& rng,\n"
                   "            CounterStream& stream) {\n"
                   "  if (rng.uniform01() < p) mark(a);\n"
                   "  stream.skip(1);\n"
                   "}\n")
        findings = lint.scan_text(self.INJECTOR, snippet)
        self.assertEqual(rules_of(findings), ["mixed-rng-version"])
        self.assertEqual(findings[0].line, 4)  # where the mix begins

    def test_passing_both_generators_on_fires(self):
        snippet = ("void inject(HexArray& a, Rng& rng, CounterStream& s2) {\n"
                   "  helper(a, rng);\n"
                   "  other(a, stream);\n"
                   "}\n")
        findings = lint.scan_text(self.INJECTOR, snippet)
        self.assertEqual(rules_of(findings), ["mixed-rng-version"])

    def test_adjacent_v1_and_v2_twins_are_fine(self):
        snippet = ("void inject(HexArray& a, Rng& rng) {\n"
                   "  helper(a, rng);\n"
                   "}\n"
                   "void inject_v2(HexArray& a, CounterStream& stream) {\n"
                   "  helper_v2(a, stream);\n"
                   "}\n")
        self.assertEqual(lint.scan_text(self.INJECTOR, snippet), [])

    def test_declarations_mentioning_both_types_are_fine(self):
        # A header declaring both overloads: parameter names are preceded by
        # '&', which is not a draw.
        snippet = ("FaultMap inject(HexArray& array, Rng& rng) const;\n"
                   "FaultMap inject_v2(HexArray& array,\n"
                   "                   CounterStream& stream) const;\n")
        self.assertEqual(lint.scan_text("src/fault/injector.hpp", snippet),
                         [])

    def test_sim_fault_model_is_an_injector_path(self):
        snippet = ("void inject(FaultState& s, Rng& rng) {\n"
                   "  rng.uniform01();\n"
                   "  stream.skip(1);\n"
                   "}\n")
        findings = lint.scan_text("src/sim/fault_model.cpp", snippet)
        self.assertEqual(rules_of(findings), ["mixed-rng-version"])

    def test_non_injector_paths_are_exempt(self):
        # session.cpp holds the v1/v2 dispatch (separate lambdas per
        # contract) and is deliberately outside the rule's scope.
        snippet = ("void run(Rng& rng, CounterStream& stream) {\n"
                   "  rng.uniform01();\n"
                   "  stream.skip(1);\n"
                   "}\n")
        self.assertEqual(lint.scan_text("src/sim/session.cpp", snippet), [])


class AllowlistTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.mkdtemp(prefix="lint_determinism_")
        self.addCleanup(shutil.rmtree, self.tmp)
        os.makedirs(os.path.join(self.tmp, "src", "yield"))

    def write(self, rel, text):
        path = os.path.join(self.tmp, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        return path

    def lint_repo(self, allow_text=""):
        allow = self.write("tools/allow.txt", allow_text)
        files = lint.collect_files(self.tmp, [])
        return lint.lint(self.tmp, files, allow, use_libclang=False)

    def test_entry_suppresses_finding(self):
        self.write("src/yield/x.cpp", "std::random_device rd;\n")
        kept, suppressed, errors = self.lint_repo(
            "src/yield/x.cpp:banned-time-source:random_device rd"
            " | hardware entropy for a one-off calibration tool\n")
        self.assertEqual(errors, [])
        self.assertEqual(kept, [])
        self.assertEqual(suppressed, 1)

    def test_unmatched_finding_is_kept(self):
        self.write("src/yield/x.cpp",
                   "std::random_device rd;\nsrand(1);\n")
        kept, suppressed, errors = self.lint_repo(
            "src/yield/x.cpp:banned-time-source:random_device rd | ok\n")
        self.assertEqual(errors, [])
        self.assertEqual(suppressed, 1)
        self.assertEqual(len(kept), 1)
        self.assertIn("srand", kept[0].source)

    def test_missing_justification_is_config_error(self):
        self.write("src/yield/x.cpp", "int a;\n")
        kept, _suppressed, errors = self.lint_repo(
            "src/yield/x.cpp:banned-time-source:whatever\n")
        self.assertEqual(kept, [])
        self.assertTrue(errors and "justification" in errors[0])

    def test_malformed_entry_is_config_error(self):
        self.write("src/yield/x.cpp", "int a;\n")
        _kept, _suppressed, errors = self.lint_repo(
            "not-enough-colons | some reason\n")
        self.assertTrue(errors)

    def test_stale_entry_fails_the_lint(self):
        self.write("src/yield/x.cpp", "int a;\n")
        kept, _suppressed, errors = self.lint_repo(
            "src/yield/x.cpp:banned-time-source:random_device | gone\n")
        self.assertEqual(errors, [])
        self.assertEqual(rules_of(kept), ["stale-allowlist"])

    def test_comments_and_blanks_ignored(self):
        self.write("src/yield/x.cpp", "int a;\n")
        kept, _suppressed, errors = self.lint_repo(
            "# a comment\n\n   \n")
        self.assertEqual(errors, [])
        self.assertEqual(kept, [])


class CliTest(unittest.TestCase):
    SCRIPT = os.path.join(REPO_ROOT, "tools", "lint_determinism.py")

    def run_cli(self, *args, cwd=None):
        return subprocess.run(
            [sys.executable, self.SCRIPT, *args],
            capture_output=True, text=True, cwd=cwd or REPO_ROOT)

    def test_real_repo_is_clean_with_checked_in_allowlist(self):
        result = self.run_cli("--no-libclang")
        self.assertEqual(result.returncode, 0,
                         result.stdout + result.stderr)

    def test_violation_exits_one(self):
        with tempfile.TemporaryDirectory() as tmp:
            os.makedirs(os.path.join(tmp, "src"))
            bad = os.path.join(tmp, "src", "bad.cpp")
            with open(bad, "w", encoding="utf-8") as handle:
                handle.write("std::random_device rd;\n")
            allow = os.path.join(tmp, "allow.txt")
            open(allow, "w", encoding="utf-8").close()
            result = self.run_cli("--no-libclang", "--root", tmp,
                                  "--allowlist", allow)
            self.assertEqual(result.returncode, 1, result.stderr)
            self.assertIn("banned-time-source", result.stdout)

    def test_malformed_allowlist_exits_two(self):
        with tempfile.TemporaryDirectory() as tmp:
            os.makedirs(os.path.join(tmp, "src"))
            allow = os.path.join(tmp, "allow.txt")
            with open(allow, "w", encoding="utf-8") as handle:
                handle.write("no-justification-here\n")
            result = self.run_cli("--no-libclang", "--root", tmp,
                                  "--allowlist", allow)
            self.assertEqual(result.returncode, 2, result.stderr)


if __name__ == "__main__":
    unittest.main()
